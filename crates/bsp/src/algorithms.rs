//! BSP cost formulations of the paper's parallel algorithms, after
//! Tiskin, *Communication vs Synchronisation in Parallel String
//! Comparison* (SPAA 2020) — reference [25], the model in which the
//! parallel braid-multiplication approach was designed.
//!
//! Two algorithm families are modelled:
//!
//! * [`antidiag_combing_cost`] — the fine-grained anti-diagonal sweep:
//!   one superstep per anti-diagonal wavefront over blocks, `Θ(m+n)`
//!   synchronisations, negligible communication (only block boundaries);
//! * [`strip_combing_cost`] — the coarse-grained strip algorithm behind
//!   Listing 7: each processor combs an `m × n/p` strip (one superstep,
//!   no communication), then `log₂ p` rounds of pairwise kernel
//!   composition, each exchanging O(m + n) kernel words and multiplying
//!   braids in O(N log N).
//!
//! The point of [25] — and what [`crate::sweep_machines`] exhibits — is
//! the tradeoff: the wavefront algorithm is work-optimal but pays `Θ(n)`
//! barriers, so it wins only when `l` is small; the strip algorithm pays
//! `Θ(log p)` barriers plus the braid-multiplication overhead, so it wins
//! on high-latency machines. Constant factors can be calibrated against
//! the real implementations with [`Calibration::measure`].

use std::time::Instant;

use crate::model::{BspCost, BspMachine};

/// Calibrated per-operation constants (in nanoseconds) tying the abstract
/// cost model to this machine's actual implementation constants.
#[derive(Clone, Copy, Debug)]
pub struct Calibration {
    /// ns per combing cell update (branchless inner loop).
    pub ns_per_cell: f64,
    /// ns per element of a steady-ant multiplication, per log-level.
    pub ns_per_ant_element: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        // typical values for this crate's implementations on a ~3 GHz core
        Calibration { ns_per_cell: 0.7, ns_per_ant_element: 6.0 }
    }
}

impl Calibration {
    /// Micro-measures both constants on the running machine.
    pub fn measure() -> Self {
        use slcs_datagen::{normal_string, seeded_rng};
        let mut rng = seeded_rng(0xCAB);
        let n = 2_000usize;
        let a = normal_string(&mut rng, n, 1.0);
        let b = normal_string(&mut rng, n, 1.0);
        let t = Instant::now();
        std::hint::black_box(slcs_semilocal::antidiag_combing_branchless(&a, &b));
        let ns_per_cell = t.elapsed().as_nanos() as f64 / (n * n) as f64;

        let order = 1 << 17;
        let p = slcs_perm::Permutation::random(order, &mut rng);
        let q = slcs_perm::Permutation::random(order, &mut rng);
        let t = Instant::now();
        std::hint::black_box(slcs_braid::steady_ant_combined(&p, &q));
        let levels = (order as f64).log2();
        let ns_per_ant_element = t.elapsed().as_nanos() as f64 / (order as f64 * levels);
        Calibration { ns_per_cell, ns_per_ant_element }
    }
}

/// Work of one steady-ant multiplication of order `order`, in cell-update
/// units (so costs are directly comparable with combing work).
fn ant_work(order: f64, cal: &Calibration) -> f64 {
    if order <= 1.0 {
        return 0.0;
    }
    order * order.log2() * (cal.ns_per_ant_element / cal.ns_per_cell)
}

/// BSP cost of the fine-grained anti-diagonal wavefront comb of an
/// `m × n` grid on `p` processors, with blocks of `grain` cells: each
/// wavefront is one superstep; processors exchange only the strand values
/// on block boundaries.
pub fn antidiag_combing_cost(m: usize, n: usize, machine: &BspMachine, grain: usize) -> BspCost {
    let p = machine.p as f64;
    let (m_f, n_f) = (m as f64, n as f64);
    let grain = grain.max(1) as f64;
    // block wavefronts: diagonals of the (m/√grain) × (n/√grain) block grid
    let bm = (m_f / grain.sqrt()).ceil().max(1.0);
    let bn = (n_f / grain.sqrt()).ceil().max(1.0);
    let diagonals = bm + bn - 1.0;
    let mut cost = BspCost::default();
    for d in 0..diagonals as usize {
        let d = d as f64;
        // blocks on this diagonal
        let len = (d + 1.0).min(bm).min(bn).min(diagonals - d);
        let busiest = (len / p).ceil();
        // each block: `grain` cells of work; boundary exchange: 2√grain words
        cost.step(busiest * grain, busiest * 2.0 * grain.sqrt());
    }
    cost
}

/// BSP cost of the coarse-grained strip algorithm: p strips combed
/// independently, then a log₂ p composition tree of braid
/// multiplications of growing order.
pub fn strip_combing_cost(m: usize, n: usize, machine: &BspMachine, cal: &Calibration) -> BspCost {
    let p = machine.p.max(1);
    let (m_f, n_f) = (m as f64, n as f64);
    let mut cost = BspCost::default();
    // superstep 1: every processor combs its m × (n/p) strip
    cost.step(m_f * (n_f / p as f64).ceil(), 0.0);
    // log₂ p composition rounds: at round r, pairs of kernels of order
    // m + n/2^(log p − r) are glued and multiplied; the kernels travel.
    let rounds = (p as f64).log2().ceil() as usize;
    let mut piece_n = n_f / p as f64;
    for _ in 0..rounds {
        let order = m_f + 2.0 * piece_n;
        cost.step(ant_work(order, cal), order);
        piece_n *= 2.0;
    }
    cost
}

/// Predicted best algorithm and time for every machine in a `(g, l)`
/// sweep — the communication-vs-synchronisation picture of [25].
pub struct SweepRow {
    pub p: usize,
    pub g: f64,
    pub l: f64,
    pub wavefront: f64,
    pub strip: f64,
}

/// Sweeps machines and returns the predicted times of both algorithms.
pub fn sweep_machines(
    m: usize,
    n: usize,
    machines: &[BspMachine],
    cal: &Calibration,
    grain: usize,
) -> Vec<SweepRow> {
    machines
        .iter()
        .map(|mac| SweepRow {
            p: mac.p,
            g: mac.g,
            l: mac.l,
            wavefront: antidiag_combing_cost(m, n, mac, grain).time(mac),
            strip: strip_combing_cost(m, n, mac, cal).time(mac),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAL: Calibration = Calibration { ns_per_cell: 0.7, ns_per_ant_element: 6.0 };

    #[test]
    fn wavefront_work_conserves_grid_cells() {
        // On one processor with zero overheads, total time ≈ total cells.
        let m = 512;
        let n = 768;
        let machine = BspMachine::pram(1);
        let cost = antidiag_combing_cost(m, n, &machine, 1024);
        let cells = (m * n) as f64;
        assert!(
            cost.time(&machine) >= cells && cost.time(&machine) <= 2.0 * cells,
            "got {} for {cells} cells",
            cost.time(&machine)
        );
    }

    #[test]
    fn strip_supersteps_are_log_p_plus_one() {
        for p in [1usize, 2, 4, 8, 16] {
            let machine = BspMachine { p, g: 1.0, l: 100.0 };
            let cost = strip_combing_cost(1_000, 1_000, &machine, &CAL);
            assert_eq!(cost.sync_count(), 1 + (p as f64).log2().ceil() as usize);
        }
    }

    #[test]
    fn wavefront_pays_many_more_barriers_than_strip() {
        let machine = BspMachine { p: 8, g: 1.0, l: 1.0 };
        let wf = antidiag_combing_cost(4_000, 4_000, &machine, 4_096);
        let st = strip_combing_cost(4_000, 4_000, &machine, &CAL);
        assert!(wf.sync_count() > 10 * st.sync_count());
    }

    #[test]
    fn high_latency_machines_prefer_the_strip_algorithm() {
        let cal = CAL;
        let lo = BspMachine { p: 8, g: 1.0, l: 10.0 };
        let hi = BspMachine { p: 8, g: 1.0, l: 1e7 };
        let rows = sweep_machines(20_000, 20_000, &[lo, hi], &cal, 4_096);
        // low latency: the work-optimal wavefront wins (or ties)
        assert!(
            rows[0].wavefront < rows[0].strip * 1.5,
            "low-l: wavefront {} vs strip {}",
            rows[0].wavefront,
            rows[0].strip
        );
        // high latency: barriers dominate and the strip algorithm wins
        assert!(
            rows[1].strip < rows[1].wavefront,
            "high-l: strip {} vs wavefront {}",
            rows[1].strip,
            rows[1].wavefront
        );
    }

    #[test]
    fn more_processors_reduce_strip_compute_time() {
        let cal = CAL;
        let t1 = strip_combing_cost(10_000, 10_000, &BspMachine::pram(1), &cal)
            .time(&BspMachine::pram(1));
        let t8 = strip_combing_cost(10_000, 10_000, &BspMachine::pram(8), &cal)
            .time(&BspMachine::pram(8));
        assert!(t8 < t1 / 4.0, "8-way strip should be ≥4x faster: {t1} vs {t8}");
    }

    #[test]
    fn calibration_measures_sane_constants() {
        let cal = Calibration::measure();
        assert!(cal.ns_per_cell > 0.05 && cal.ns_per_cell < 100.0, "{cal:?}");
        assert!(cal.ns_per_ant_element > 0.1 && cal.ns_per_ant_element < 1000.0, "{cal:?}");
    }
}
