use std::fmt;

use crate::PermIndex;

/// A permutation of `[0, n)`, viewed interchangeably as a permutation
/// matrix with nonzeros `(i, forward[i])`.
///
/// Both the forward (`row → col`) and inverse (`col → row`) maps are
/// stored, so either direction is a single indexed load. This is the
/// "two lists of size N" representation the paper uses to bound the memory
/// of the steady-ant recursion (§4.2.1).
///
/// # Examples
///
/// ```
/// use slcs_perm::Permutation;
///
/// let p = Permutation::from_forward(vec![2, 0, 1]).unwrap();
/// assert_eq!(p.col_of(0), 2);
/// assert_eq!(p.row_of(2), 0);
/// assert_eq!(&p.compose(&p.inverse()), &Permutation::identity(3));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Permutation {
    forward: Vec<PermIndex>,
    inverse: Vec<PermIndex>,
}

/// Error returned when a vector does not describe a permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PermutationError {
    /// An entry was `>= n`.
    OutOfRange { index: usize, value: usize, len: usize },
    /// Two rows mapped to the same column.
    Duplicate { value: usize },
    /// The order does not fit in [`PermIndex`].
    TooLarge { len: usize },
}

impl fmt::Display for PermutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PermutationError::OutOfRange { index, value, len } => write!(
                f,
                "entry {value} at position {index} is out of range for a permutation of [0, {len})"
            ),
            PermutationError::Duplicate { value } => {
                write!(f, "value {value} appears more than once")
            }
            PermutationError::TooLarge { len } => {
                write!(f, "permutation order {len} exceeds the u32 index space")
            }
        }
    }
}

impl std::error::Error for PermutationError {}

impl Permutation {
    /// The identity permutation of order `n`.
    pub fn identity(n: usize) -> Self {
        assert!(n <= PermIndex::MAX as usize, "order exceeds u32 index space");
        let forward: Vec<PermIndex> = (0..n as PermIndex).collect();
        Permutation { inverse: forward.clone(), forward }
    }

    /// The order-reversing permutation `i ↦ n - 1 - i` (the "zero kernel"
    /// of a fully mismatching comparison).
    pub fn reversal(n: usize) -> Self {
        assert!(n <= PermIndex::MAX as usize, "order exceeds u32 index space");
        let forward: Vec<PermIndex> = (0..n as PermIndex).rev().collect();
        Permutation { inverse: forward.clone(), forward }
    }

    /// Builds a permutation from its forward map, validating that it is a
    /// bijection on `[0, n)`.
    pub fn from_forward(forward: Vec<PermIndex>) -> Result<Self, PermutationError> {
        let n = forward.len();
        if n > PermIndex::MAX as usize {
            return Err(PermutationError::TooLarge { len: n });
        }
        let mut inverse = vec![PermIndex::MAX; n];
        for (i, &c) in forward.iter().enumerate() {
            let c_us = c as usize;
            if c_us >= n {
                return Err(PermutationError::OutOfRange { index: i, value: c_us, len: n });
            }
            if inverse[c_us] != PermIndex::MAX {
                return Err(PermutationError::Duplicate { value: c_us });
            }
            inverse[c_us] = i as PermIndex;
        }
        Ok(Permutation { forward, inverse })
    }

    /// Builds a permutation from its forward map **without** validation.
    ///
    /// The caller must guarantee `forward` is a bijection on `[0, n)`.
    /// Hot paths (combing, steady ant) use this to avoid a second pass;
    /// debug builds still assert the invariant.
    pub fn from_forward_unchecked(forward: Vec<PermIndex>) -> Self {
        debug_assert!(forward.len() <= PermIndex::MAX as usize);
        let mut inverse = vec![PermIndex::MAX; forward.len()];
        for (i, &c) in forward.iter().enumerate() {
            debug_assert!((c as usize) < forward.len(), "entry out of range");
            debug_assert!(inverse[c as usize] == PermIndex::MAX, "duplicate entry");
            inverse[c as usize] = i as PermIndex;
        }
        Permutation { forward, inverse }
    }

    /// Builds a permutation from both maps without validation or extra
    /// work. In debug builds, consistency is asserted.
    pub fn from_parts_unchecked(forward: Vec<PermIndex>, inverse: Vec<PermIndex>) -> Self {
        debug_assert_eq!(forward.len(), inverse.len());
        debug_assert!(forward.iter().enumerate().all(|(i, &c)| inverse[c as usize] as usize == i));
        Permutation { forward, inverse }
    }

    /// A uniformly random permutation of order `n` (Fisher–Yates).
    pub fn random<R: rand::Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        use rand::RngExt as _;
        let mut forward: Vec<PermIndex> = (0..n as PermIndex).collect();
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            forward.swap(i, j);
        }
        Self::from_forward_unchecked(forward)
    }

    /// Order of the permutation (the `n` in "permutation of `[0, n)`").
    #[inline]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// `true` iff the order is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Column of the nonzero in row `i`.
    #[inline]
    pub fn col_of(&self, row: usize) -> usize {
        self.forward[row] as usize
    }

    /// Row of the nonzero in column `j`.
    #[inline]
    pub fn row_of(&self, col: usize) -> usize {
        self.inverse[col] as usize
    }

    /// The forward map as a slice.
    #[inline]
    pub fn forward(&self) -> &[PermIndex] {
        &self.forward
    }

    /// The inverse map as a slice.
    #[inline]
    pub fn inverse_slice(&self) -> &[PermIndex] {
        &self.inverse
    }

    /// Iterator over the nonzeros `(row, col)` in row order.
    pub fn nonzeros(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.forward.iter().enumerate().map(|(i, &c)| (i, c as usize))
    }

    /// The inverse permutation (matrix transpose).
    pub fn inverse(&self) -> Self {
        Permutation { forward: self.inverse.clone(), inverse: self.forward.clone() }
    }

    /// Ordinary function composition: `(self ∘ other)(i) = self(other(i))`.
    ///
    /// Note that this is **not** the sticky-braid (Demazure / distance)
    /// product — that lives in the `slcs-braid` crate.
    pub fn compose(&self, other: &Permutation) -> Self {
        assert_eq!(self.len(), other.len(), "composition requires equal orders");
        let forward: Vec<PermIndex> =
            other.forward.iter().map(|&j| self.forward[j as usize]).collect();
        Self::from_forward_unchecked(forward)
    }

    /// Rotation of the matrix by 180°: nonzero `(i, j)` moves to
    /// `(n-1-i, n-1-j)`.
    ///
    /// This is the transformation of Theorem 3.5 (the *flip* theorem):
    /// `P_{a,b}[i, j] = P_{b,a}[m+n-1-i, m+n-1-j]`.
    pub fn rotate180(&self) -> Self {
        let n = self.len();
        let mut forward = vec![0 as PermIndex; n];
        for (i, &c) in self.forward.iter().enumerate() {
            forward[n - 1 - i] = (n - 1 - c as usize) as PermIndex;
        }
        Self::from_forward_unchecked(forward)
    }

    /// Number of nonzeros `(r, c)` with `r ≥ i` and `c < j`, computed by a
    /// linear scan. This is the suite-wide dominance convention (see the
    /// crate docs); quadratic-time callers only — use
    /// [`crate::counting::MergeSortTree`] for repeated queries.
    pub fn dominance_sum_scan(&self, i: usize, j: usize) -> usize {
        self.forward[i.min(self.len())..].iter().filter(|&&c| (c as usize) < j).count()
    }

    /// Consumes the permutation and returns the forward map.
    pub fn into_forward(self) -> Vec<PermIndex> {
        self.forward
    }
}

impl fmt::Debug for Permutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Permutation{:?}", self.forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_every_index_to_itself() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.col_of(i), i);
            assert_eq!(p.row_of(i), i);
        }
    }

    #[test]
    fn reversal_maps_to_mirror() {
        let p = Permutation::reversal(4);
        assert_eq!(p.forward(), &[3, 2, 1, 0]);
        assert_eq!(p.rotate180(), p, "reversal is symmetric under 180° rotation");
    }

    #[test]
    fn from_forward_rejects_out_of_range() {
        let err = Permutation::from_forward(vec![0, 3]).unwrap_err();
        assert!(matches!(err, PermutationError::OutOfRange { value: 3, .. }));
    }

    #[test]
    fn from_forward_rejects_duplicates() {
        let err = Permutation::from_forward(vec![1, 1, 0]).unwrap_err();
        assert!(matches!(err, PermutationError::Duplicate { value: 1 }));
    }

    #[test]
    fn inverse_roundtrips() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
        let q = p.inverse();
        for i in 0..4 {
            assert_eq!(q.col_of(p.col_of(i)), i);
        }
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn compose_is_function_composition() {
        let p = Permutation::from_forward(vec![1, 2, 0]).unwrap();
        let q = Permutation::from_forward(vec![2, 1, 0]).unwrap();
        let r = p.compose(&q);
        for i in 0..3 {
            assert_eq!(r.col_of(i), p.col_of(q.col_of(i)));
        }
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let mut rng = make_rng();
        for _ in 0..20 {
            let p = Permutation::random(17, &mut rng);
            assert_eq!(p.compose(&p.inverse()), Permutation::identity(17));
            assert_eq!(p.inverse().compose(&p), Permutation::identity(17));
        }
    }

    #[test]
    fn rotate180_is_involutive() {
        let mut rng = make_rng();
        let p = Permutation::random(33, &mut rng);
        assert_eq!(p.rotate180().rotate180(), p);
    }

    #[test]
    fn dominance_scan_counts_quadrant() {
        // P = [(0,2), (1,0), (2,1)]
        let p = Permutation::from_forward(vec![2, 0, 1]).unwrap();
        assert_eq!(p.dominance_sum_scan(0, 3), 3);
        assert_eq!(p.dominance_sum_scan(1, 2), 2); // (1,0) and (2,1)
        assert_eq!(p.dominance_sum_scan(2, 2), 1); // (2,1)
        assert_eq!(p.dominance_sum_scan(0, 0), 0);
        assert_eq!(p.dominance_sum_scan(3, 3), 0);
    }

    #[test]
    fn empty_permutation_is_fine() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert_eq!(p.nonzeros().count(), 0);
        assert_eq!(p.rotate180(), p);
    }

    #[test]
    fn random_is_valid_permutation() {
        let mut rng = make_rng();
        for n in [0usize, 1, 2, 7, 100] {
            let p = Permutation::random(n, &mut rng);
            let mut seen = vec![false; n];
            for (_, c) in p.nonzeros() {
                assert!(!seen[c]);
                seen[c] = true;
            }
        }
    }

    pub(crate) fn make_rng() -> impl rand::Rng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(0x5eed_cafe)
    }
}
