//! Explicit dominance-sum tables.
//!
//! A [`DominanceTable`] materialises `PΣ(i, j)` for all
//! `i, j ∈ [0, n]` — quadratic memory, so this is a tool for tests, the
//! reference distance product, and small-input query answering, not for
//! the large-scale algorithms.

use crate::{PermIndex, Permutation};

/// The `(n+1) × (n+1)` table of dominance sums
/// `PΣ(i, j) = |{ (r, c) ∈ P : r ≥ i, c < j }|` of a permutation of
/// order `n`.
///
/// Stored row-major; `PΣ(n, ·) = 0` and `PΣ(·, 0) = 0` by definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DominanceTable {
    n: usize,
    /// Row-major `(n+1) × (n+1)`.
    sums: Vec<u32>,
}

impl DominanceTable {
    /// Builds the full table in O(n²) time and memory.
    pub fn new(p: &Permutation) -> Self {
        let n = p.len();
        let stride = n + 1;
        let mut sums = vec![0u32; stride * stride];
        // Fill bottom-up: row i from row i+1. Row n is all zeros.
        for i in (0..n).rev() {
            let c = p.col_of(i);
            let (above, below) = sums.split_at_mut((i + 1) * stride);
            let row = &mut above[i * stride..(i + 1) * stride];
            let prev = &below[..stride];
            // PΣ(i, j) = PΣ(i+1, j) + [col_of(i) < j]
            row[..=c].copy_from_slice(&prev[..=c]);
            for j in (c + 1)..stride {
                row[j] = prev[j] + 1;
            }
        }
        DominanceTable { n, sums }
    }

    /// Order of the underlying permutation.
    #[inline]
    pub fn order(&self) -> usize {
        self.n
    }

    /// `PΣ(i, j)` — number of nonzeros with row `≥ i`, col `< j`.
    #[inline]
    pub fn sum(&self, i: usize, j: usize) -> u32 {
        debug_assert!(i <= self.n && j <= self.n);
        self.sums[i * (self.n + 1) + j]
    }

    /// Recovers the permutation from its dominance table by the
    /// cross-difference identity
    /// `P[r] = c  ⇔  Σ(r, c+1) − Σ(r, c) − Σ(r+1, c+1) + Σ(r+1, c) = 1`.
    pub fn recover(&self) -> Permutation {
        let n = self.n;
        let mut forward = vec![0 as PermIndex; n];
        for (r, slot) in forward.iter_mut().enumerate() {
            let c = (0..n)
                .find(|&c| {
                    let d = self.sum(r, c + 1) as i64 - self.sum(r, c) as i64
                        + self.sum(r + 1, c) as i64
                        - self.sum(r + 1, c + 1) as i64;
                    debug_assert!((0..=1).contains(&d), "cross-difference must be 0 or 1");
                    d == 1
                })
                // PANIC: each row of a valid dominance table has exactly one unit cross-difference.
                .expect("dominance table does not describe a permutation");
            *slot = c as PermIndex;
        }
        Permutation::from_forward_unchecked(forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_scan_on_small_perm() {
        let p = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
        let t = DominanceTable::new(&p);
        for i in 0..=4 {
            for j in 0..=4 {
                assert_eq!(
                    t.sum(i, j) as usize,
                    p.dominance_sum_scan(i, j),
                    "mismatch at ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn identity_table_shape() {
        // For the identity, PΣ(i, j) = |{ r : r ≥ i, r < j }| = max(0, j - i).
        let t = DominanceTable::new(&Permutation::identity(5));
        for i in 0..=5 {
            for j in 0..=5 {
                assert_eq!(t.sum(i, j) as usize, j.saturating_sub(i));
            }
        }
    }

    #[test]
    fn recover_roundtrips() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 40] {
            let p = Permutation::random(n, &mut rng);
            assert_eq!(DominanceTable::new(&p).recover(), p);
        }
    }

    #[test]
    fn zero_order_table() {
        let t = DominanceTable::new(&Permutation::identity(0));
        assert_eq!(t.sum(0, 0), 0);
        assert!(t.recover().is_empty());
    }
}
