//! Permutation matrices and unit-Monge machinery for semi-local string
//! comparison.
//!
//! This crate is the algebraic substrate of the suite. Semi-local LCS
//! kernels (Tiskin 2008) are permutation matrices; sticky braid
//! multiplication (Tiskin 2015) is the *distance product* of the associated
//! unit-Monge matrices. Everything downstream — the steady-ant algorithm,
//! combing, kernel queries — is expressed in terms of the types defined
//! here:
//!
//! * [`Permutation`] — a permutation of `[0, n)` stored as forward and
//!   inverse index arrays (the "two lists of size N" representation from
//!   §4.2.1 of the paper).
//! * [`dominance`] — explicit dominance-sum tables and the dominance
//!   convention used throughout the suite.
//! * [`monge`] — the O(n²) reference implementation of the unit-Monge
//!   distance product, used as the correctness oracle for the steady-ant
//!   algorithm.
//! * [`counting`] — a merge-sort tree answering dominance-counting queries
//!   over a permutation in O(log² n) with linear memory (the range-counting
//!   structures referenced in footnote 1 of the paper).
//!
//! # Dominance convention
//!
//! For a permutation matrix `P` of order `n` and indices
//! `i, j ∈ [0, n]`, the *dominance sum* is
//!
//! ```text
//! PΣ(i, j) = |{ (r, c) : P[r] = c, r ≥ i, c < j }|
//! ```
//!
//! i.e. the number of nonzeros weakly below row `i` and strictly to the
//! left of column `j`. With this convention the distance product
//! `R = P ⊙ Q` is defined by `RΣ(i, k) = min_j (PΣ(i, j) + QΣ(j, k))`, and
//! the identity permutation is its unit.

pub mod counting;
pub mod dominance;
pub mod monge;
mod perm;

pub use counting::MergeSortTree;
pub use dominance::DominanceTable;
pub use perm::{Permutation, PermutationError};

/// Index type used for permutation entries.
///
/// `u32` halves the memory footprint relative to `usize` on 64-bit
/// machines, which matters for the paper's braid-multiplication experiments
/// on permutations of size 10⁷ (Figure 4). Orders above `u32::MAX` are
/// rejected at construction time.
pub type PermIndex = u32;
