//! Reference implementation of the unit-Monge distance product.
//!
//! The product `R = P ⊙ Q` of two permutations of order `n` is defined on
//! dominance sums by
//!
//! ```text
//! RΣ(i, k) = min over j of ( PΣ(i, j) + QΣ(j, k) )
//! ```
//!
//! and `R` itself is recovered from `RΣ` by cross-differences. Tiskin
//! (2015) proves that `R` is again a permutation ("unit-Monge matrices are
//! closed under distance multiplication"), which is exactly the Demazure
//! product of the corresponding reduced sticky braids.
//!
//! The implementation here is the **oracle**: O(n²) memory and O(n³) time,
//! straight from the definition, with no cleverness to get wrong. The fast
//! O(n log n) steady-ant algorithm in `slcs-braid` is property-tested
//! against it.

use crate::dominance::DominanceTable;
use crate::Permutation;

/// Why a dominance-sum table failed to describe a unit-Monge matrix.
///
/// Surfaced as a value (not a panic) so long-running services can reject
/// malformed or adversarial inputs without aborting a worker thread.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MongeError {
    /// The orders of the two factors differ.
    OrderMismatch { left: usize, right: usize },
    /// Cross-differences of some row contain no unit — the table is not
    /// the dominance-sum table of any permutation matrix.
    NotUnitMonge { row: usize },
    /// Every row produced a column, but the columns collide — the
    /// recovered matrix is not a permutation.
    NotPermutation,
}

impl std::fmt::Display for MongeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MongeError::OrderMismatch { left, right } => {
                write!(f, "distance product requires equal orders (got {left} and {right})")
            }
            MongeError::NotUnitMonge { row } => {
                write!(f, "sums are not unit-Monge: row {row} has no nonzero cross-difference")
            }
            MongeError::NotPermutation => {
                write!(f, "recovered cross-differences do not form a permutation")
            }
        }
    }
}

impl std::error::Error for MongeError {}

/// Distance product of two permutations by definition. O(n³) time,
/// O(n²) memory; intended for tests and small inputs only.
///
/// # Panics
///
/// Panics if the orders differ. For a non-panicking variant (e.g. when
/// the factors come from untrusted input) use
/// [`try_distance_product_reference`].
pub fn distance_product_reference(p: &Permutation, q: &Permutation) -> Permutation {
    try_distance_product_reference(p, q).unwrap_or_else(|e| panic!("{e}"))
}

/// [`distance_product_reference`], reporting malformed input as an error
/// instead of panicking.
pub fn try_distance_product_reference(
    p: &Permutation,
    q: &Permutation,
) -> Result<Permutation, MongeError> {
    if p.len() != q.len() {
        return Err(MongeError::OrderMismatch { left: p.len(), right: q.len() });
    }
    let n = p.len();
    if n == 0 {
        return Ok(Permutation::identity(0));
    }
    let pt = DominanceTable::new(p);
    let qt = DominanceTable::new(q);
    // RΣ(i, k) for all i, k.
    let stride = n + 1;
    let mut rsum = vec![0u32; stride * stride];
    for i in 0..=n {
        for k in 0..=n {
            let mut best = u32::MAX;
            for j in 0..=n {
                let v = pt.sum(i, j) + qt.sum(j, k);
                best = best.min(v);
            }
            rsum[i * stride + k] = best;
        }
    }
    recover_from_sums(n, &rsum)
}

/// Recovers a permutation from a row-major `(n+1)²` dominance-sum table,
/// rejecting tables that are not unit-Monge.
pub(crate) fn recover_from_sums(n: usize, sums: &[u32]) -> Result<Permutation, MongeError> {
    let stride = n + 1;
    let at = |i: usize, k: usize| sums[i * stride + k] as i64;
    let mut forward = vec![0u32; n];
    for (r, slot) in forward.iter_mut().enumerate() {
        let c = (0..n)
            .find(|&c| at(r, c + 1) - at(r, c) + at(r + 1, c) - at(r + 1, c + 1) == 1)
            .ok_or(MongeError::NotUnitMonge { row: r })?;
        *slot = c as u32;
    }
    Permutation::from_forward(forward).map_err(|_| MongeError::NotPermutation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn identity_is_the_unit() {
        let mut rng = rng();
        for n in [1usize, 2, 5, 16, 33] {
            let p = Permutation::random(n, &mut rng);
            let id = Permutation::identity(n);
            assert_eq!(distance_product_reference(&p, &id), p, "P ⊙ I = P (n={n})");
            assert_eq!(distance_product_reference(&id, &p), p, "I ⊙ P = P (n={n})");
        }
    }

    #[test]
    fn product_is_a_permutation() {
        let mut rng = rng();
        for _ in 0..10 {
            let p = Permutation::random(24, &mut rng);
            let q = Permutation::random(24, &mut rng);
            let r = distance_product_reference(&p, &q);
            assert_eq!(r.len(), 24);
        }
    }

    #[test]
    fn product_is_associative() {
        let mut rng = rng();
        for _ in 0..5 {
            let p = Permutation::random(12, &mut rng);
            let q = Permutation::random(12, &mut rng);
            let r = Permutation::random(12, &mut rng);
            let left = distance_product_reference(&distance_product_reference(&p, &q), &r);
            let right = distance_product_reference(&p, &distance_product_reference(&q, &r));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn reversal_absorbs() {
        // The reversal permutation has RΣ(i,k) realized trivially; multiplying
        // reversal by reversal gives reversal again (all strand pairs already
        // crossed — the Demazure product is idempotent on the longest element).
        for n in [2usize, 3, 8] {
            let w0 = Permutation::reversal(n);
            assert_eq!(distance_product_reference(&w0, &w0), w0);
        }
    }

    #[test]
    fn malformed_sums_are_rejected_not_panicked() {
        // An all-zero table has no unit cross-difference in row 0.
        let zeros = vec![0u32; 3 * 3];
        assert_eq!(recover_from_sums(2, &zeros), Err(MongeError::NotUnitMonge { row: 0 }));
        // A mismatched pair of factors errors instead of asserting.
        let p = Permutation::identity(3);
        let q = Permutation::identity(4);
        assert_eq!(
            try_distance_product_reference(&p, &q),
            Err(MongeError::OrderMismatch { left: 3, right: 4 })
        );
        // And a valid product round-trips through the fallible path.
        let w0 = Permutation::reversal(4);
        assert_eq!(try_distance_product_reference(&w0, &w0), Ok(w0));
    }

    #[test]
    fn small_hand_checked_product() {
        // P = identity swap on 2 elements: P = [(0,1),(1,0)] = reversal.
        // Q = identity. P ⊙ Q = P by unit law; also check a nontrivial pair
        // against an independently computed table.
        let p = Permutation::from_forward(vec![1, 0]).unwrap();
        let q = Permutation::from_forward(vec![1, 0]).unwrap();
        let r = distance_product_reference(&p, &q);
        // Demazure: crossing twice sticks — still the reversal.
        assert_eq!(r, Permutation::from_forward(vec![1, 0]).unwrap());
    }
}
