//! Reference implementation of the unit-Monge distance product.
//!
//! The product `R = P ⊙ Q` of two permutations of order `n` is defined on
//! dominance sums by
//!
//! ```text
//! RΣ(i, k) = min over j of ( PΣ(i, j) + QΣ(j, k) )
//! ```
//!
//! and `R` itself is recovered from `RΣ` by cross-differences. Tiskin
//! (2015) proves that `R` is again a permutation ("unit-Monge matrices are
//! closed under distance multiplication"), which is exactly the Demazure
//! product of the corresponding reduced sticky braids.
//!
//! The implementation here is the **oracle**: O(n²) memory and O(n³) time,
//! straight from the definition, with no cleverness to get wrong. The fast
//! O(n log n) steady-ant algorithm in `slcs-braid` is property-tested
//! against it.

use crate::dominance::DominanceTable;
use crate::Permutation;

/// Distance product of two permutations by definition. O(n³) time,
/// O(n²) memory; intended for tests and small inputs only.
///
/// # Panics
///
/// Panics if the orders differ.
pub fn distance_product_reference(p: &Permutation, q: &Permutation) -> Permutation {
    assert_eq!(p.len(), q.len(), "distance product requires equal orders");
    let n = p.len();
    if n == 0 {
        return Permutation::identity(0);
    }
    let pt = DominanceTable::new(p);
    let qt = DominanceTable::new(q);
    // RΣ(i, k) for all i, k.
    let stride = n + 1;
    let mut rsum = vec![0u32; stride * stride];
    for i in 0..=n {
        for k in 0..=n {
            let mut best = u32::MAX;
            for j in 0..=n {
                let v = pt.sum(i, j) + qt.sum(j, k);
                best = best.min(v);
            }
            rsum[i * stride + k] = best;
        }
    }
    recover_from_sums(n, &rsum)
}

/// Recovers a permutation from a row-major `(n+1)²` dominance-sum table.
pub(crate) fn recover_from_sums(n: usize, sums: &[u32]) -> Permutation {
    let stride = n + 1;
    let at = |i: usize, k: usize| sums[i * stride + k] as i64;
    let mut forward = vec![0u32; n];
    for (r, slot) in forward.iter_mut().enumerate() {
        let c = (0..n)
            .find(|&c| at(r, c + 1) - at(r, c) + at(r + 1, c) - at(r + 1, c + 1) == 1)
            .unwrap_or_else(|| panic!("sums are not unit-Monge: row {r} has no nonzero"));
        *slot = c as u32;
    }
    Permutation::from_forward(forward).expect("distance product must be a permutation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn identity_is_the_unit() {
        let mut rng = rng();
        for n in [1usize, 2, 5, 16, 33] {
            let p = Permutation::random(n, &mut rng);
            let id = Permutation::identity(n);
            assert_eq!(distance_product_reference(&p, &id), p, "P ⊙ I = P (n={n})");
            assert_eq!(distance_product_reference(&id, &p), p, "I ⊙ P = P (n={n})");
        }
    }

    #[test]
    fn product_is_a_permutation() {
        let mut rng = rng();
        for _ in 0..10 {
            let p = Permutation::random(24, &mut rng);
            let q = Permutation::random(24, &mut rng);
            let r = distance_product_reference(&p, &q);
            assert_eq!(r.len(), 24);
        }
    }

    #[test]
    fn product_is_associative() {
        let mut rng = rng();
        for _ in 0..5 {
            let p = Permutation::random(12, &mut rng);
            let q = Permutation::random(12, &mut rng);
            let r = Permutation::random(12, &mut rng);
            let left = distance_product_reference(&distance_product_reference(&p, &q), &r);
            let right = distance_product_reference(&p, &distance_product_reference(&q, &r));
            assert_eq!(left, right);
        }
    }

    #[test]
    fn reversal_absorbs() {
        // The reversal permutation has RΣ(i,k) realized trivially; multiplying
        // reversal by reversal gives reversal again (all strand pairs already
        // crossed — the Demazure product is idempotent on the longest element).
        for n in [2usize, 3, 8] {
            let w0 = Permutation::reversal(n);
            assert_eq!(distance_product_reference(&w0, &w0), w0);
        }
    }

    #[test]
    fn small_hand_checked_product() {
        // P = identity swap on 2 elements: P = [(0,1),(1,0)] = reversal.
        // Q = identity. P ⊙ Q = P by unit law; also check a nontrivial pair
        // against an independently computed table.
        let p = Permutation::from_forward(vec![1, 0]).unwrap();
        let q = Permutation::from_forward(vec![1, 0]).unwrap();
        let r = distance_product_reference(&p, &q);
        // Demazure: crossing twice sticks — still the reversal.
        assert_eq!(r, Permutation::from_forward(vec![1, 0]).unwrap());
    }
}
