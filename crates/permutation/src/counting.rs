//! Range counting over permutations.
//!
//! Semi-local LCS kernels represent the score matrix *implicitly*: reading
//! an arbitrary score requires a dominance count over the kernel
//! permutation. The paper (footnote 1) points to the classical structures
//! for range counting in permutations; we implement a **merge-sort tree** —
//! a segment tree over rows whose nodes store the sorted column values of
//! their row range — giving `O(log² n)` per query with `O(n log n)` space
//! and `O(n log n)` construction.

use crate::Permutation;

/// Merge-sort tree answering dominance-counting queries
/// `|{ (r, c) ∈ P : r ≥ i, c < j }|` over a fixed permutation.
///
/// # Examples
///
/// ```
/// use slcs_perm::{MergeSortTree, Permutation};
///
/// let p = Permutation::from_forward(vec![2, 0, 3, 1]).unwrap();
/// let t = MergeSortTree::new(&p);
/// for i in 0..=4 {
///     for j in 0..=4 {
///         assert_eq!(t.dominance_sum(i, j), p.dominance_sum_scan(i, j));
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct MergeSortTree {
    n: usize,
    /// `levels[0]` is the leaf level (the forward map itself); each higher
    /// level merges pairs of blocks from the level below. Implicit perfect
    /// binary layout over padded length.
    levels: Vec<Vec<u32>>,
}

impl MergeSortTree {
    /// Builds the tree in `O(n log n)`.
    pub fn new(p: &Permutation) -> Self {
        let n = p.len();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        let mut cur: Vec<u32> = p.forward().to_vec();
        levels.push(cur.clone());
        let mut block = 1usize;
        while block < n {
            let next_block = block * 2;
            let mut next = Vec::with_capacity(n);
            let mut start = 0;
            while start < n {
                let mid = (start + block).min(n);
                let end = (start + next_block).min(n);
                merge_sorted(&cur[start..mid], &cur[mid..end], &mut next);
                start = end;
            }
            levels.push(next.clone());
            cur = next;
            block = next_block;
        }
        MergeSortTree { n, levels }
    }

    /// Order of the underlying permutation.
    #[inline]
    pub fn order(&self) -> usize {
        self.n
    }

    /// `|{ (r, c) : r ≥ i, c < j }|` in `O(log² n)` — the suite-wide
    /// dominance convention.
    pub fn dominance_sum(&self, i: usize, j: usize) -> usize {
        self.count_rows_at_least(i.min(self.n), j)
    }

    /// Counts nonzeros with row in `[lo, hi)` and col `< j` in `O(log² n)`.
    pub fn count_in_row_range(&self, lo: usize, hi: usize, j: usize) -> usize {
        let (lo, hi) = (lo.min(self.n), hi.min(self.n));
        if lo >= hi || j == 0 {
            return 0;
        }
        // Decompose [lo, hi) into maximal aligned blocks, greedily from lo.
        let mut count = 0usize;
        let mut pos = lo;
        while pos < hi {
            // Largest level whose block starting at `pos` is aligned and fits.
            let mut level = 0usize;
            while level + 1 < self.levels.len() {
                let size = 1usize << (level + 1);
                if pos % size == 0 && pos + size <= hi {
                    level += 1;
                } else {
                    break;
                }
            }
            let size = 1usize << level;
            let seg = &self.levels[level][pos..(pos + size).min(self.n)];
            count += lower_bound(seg, j as u32);
            pos += size;
        }
        count
    }

    fn count_rows_at_least(&self, i: usize, j: usize) -> usize {
        self.count_in_row_range(i, self.n, j)
    }
}

/// Index of the first element `>= key` — i.e. the number of elements `< key`.
fn lower_bound(sorted: &[u32], key: u32) -> usize {
    sorted.partition_point(|&x| x < key)
}

fn merge_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        if a[x] <= b[y] {
            out.push(a[x]);
            x += 1;
        } else {
            out.push(b[y]);
            y += 1;
        }
    }
    out.extend_from_slice(&a[x..]);
    out.extend_from_slice(&b[y..]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(99)
    }

    #[test]
    fn matches_scan_on_random_perms() {
        let mut rng = rng();
        for n in [0usize, 1, 2, 3, 5, 8, 13, 64, 100] {
            let p = Permutation::random(n, &mut rng);
            let t = MergeSortTree::new(&p);
            for i in 0..=n {
                for j in 0..=n {
                    assert_eq!(
                        t.dominance_sum(i, j),
                        p.dominance_sum_scan(i, j),
                        "n={n} i={i} j={j}"
                    );
                }
            }
        }
    }

    #[test]
    fn row_range_counts() {
        let p = Permutation::from_forward(vec![3, 1, 4, 0, 2]).unwrap();
        let t = MergeSortTree::new(&p);
        // rows [1,4): cols {1, 4, 0}; count < 2 → {1, 0} = 2
        assert_eq!(t.count_in_row_range(1, 4, 2), 2);
        // empty ranges
        assert_eq!(t.count_in_row_range(3, 3, 5), 0);
        assert_eq!(t.count_in_row_range(4, 2, 5), 0);
        // clamped past the end
        assert_eq!(t.count_in_row_range(0, 100, 5), 5);
    }

    #[test]
    fn lower_bound_edges() {
        assert_eq!(lower_bound(&[], 3), 0);
        assert_eq!(lower_bound(&[1, 2, 3], 0), 0);
        assert_eq!(lower_bound(&[1, 2, 3], 4), 3);
        assert_eq!(lower_bound(&[1, 2, 2, 3], 2), 1);
    }
}
