//! Brute-force reference for the semi-local LCS problem, straight from
//! Definition 3.3 of the paper: `H[i,j] = LCS(a, b^pad[i : j+m))` where
//! `b^pad = ?^m b ?^m` and `?` is a wildcard matching any character.
//!
//! Cubic-to-quartic time, quadratic memory — strictly an oracle for tests
//! and tiny inputs. Every kernel-based score query in this crate is
//! validated against it.

/// Dense `(m+n+1) × (m+n+1)` semi-local score matrix, computed by dynamic
/// programming over the padded string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BruteHMatrix {
    m: usize,
    n: usize,
    /// Row-major, stride `m + n + 1`. Entries below the main
    /// anti-diagonal are negative (`j + m - i` for inverted windows).
    h: Vec<i32>,
}

impl BruteHMatrix {
    /// Computes the full matrix in `O(m (m+n)²)` time.
    pub fn new<T: Eq>(a: &[T], b: &[T]) -> Self {
        let m = a.len();
        let n = b.len();
        let size = m + n + 1;
        let mut h = vec![0i32; size * size];
        // b^pad[t] is a wildcard iff t < m or t >= m + n; otherwise b[t - m].
        let is_match = |ai: usize, t: usize| -> bool { t < m || t >= m + n || a[ai] == b[t - m] };
        // For each window start i, one DP sweep over b^pad[i..] computes
        // LCS(a, b^pad[i : k)) for every window end k — i.e. H[i][j] for
        // every j with j + m = k.
        let mut prev = vec![0u32; m + 1];
        let mut cur = vec![0u32; m + 1];
        for i in 0..size {
            // row i of H: windows [i, j + m) for j in [0, m + n];
            // non-empty requires j + m > i.
            prev.fill(0);
            // empty or inverted windows: H[i, j] = j + m - i for j + m <= i
            for j in 0..size {
                if j + m <= i {
                    h[i * size + j] = (j + m) as i32 - i as i32;
                }
            }
            if i < m {
                // window [i, i) is empty: LCS = 0 — but H is indexed by j,
                // j + m = i ⇒ j = i - m < 0; the first in-range j is 0 with
                // window [i, m): handled by the sweep below.
            }
            // sweep window end t = i+1 ..= m+n+m, tracking the DP column.
            let mut j_written = if i >= m { i - m } else { usize::MAX };
            if i >= m {
                h[i * size + (i - m)] = 0; // empty window
            }
            for t in i..(size + m - 1) {
                if t >= m + n + m {
                    break;
                }
                // extend the DP by character b^pad[t]
                cur[0] = 0;
                for ai in 0..m {
                    let up = prev[ai + 1];
                    let left = cur[ai];
                    let diag = prev[ai];
                    cur[ai + 1] =
                        if is_match(ai, t) { (diag + 1).max(up).max(left) } else { up.max(left) };
                }
                std::mem::swap(&mut prev, &mut cur);
                // window [i, t+1) corresponds to j = t + 1 - m (if in range)
                if t + 1 >= m {
                    let j = t + 1 - m;
                    if j < size {
                        h[i * size + j] = prev[m] as i32;
                        j_written = j;
                    }
                }
            }
            let _ = j_written;
        }
        BruteHMatrix { m, n, h }
    }

    /// Lengths of the input strings.
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// `H[i, j]` per Definition 3.3. Negative for inverted windows
    /// (`i > j + m`), as in the paper.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> i64 {
        let size = self.m + self.n + 1;
        debug_assert!(i < size && j < size);
        self.h[i * size + j] as i64
    }
}

/// Plain Wagner–Fischer LCS score, the simplest possible oracle.
pub fn lcs_dp<T: Eq>(a: &[T], b: &[T]) -> usize {
    let n = b.len();
    let mut prev = vec![0u32; n + 1];
    let mut cur = vec![0u32; n + 1];
    for ai in a {
        cur[0] = 0;
        for (j, bj) in b.iter().enumerate() {
            cur[j + 1] = if ai == bj { prev[j] + 1 } else { prev[j + 1].max(cur[j]) };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n] as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcs_dp_basics() {
        assert_eq!(lcs_dp(b"abcde", b"ace"), 3);
        assert_eq!(lcs_dp(b"", b"abc"), 0);
        assert_eq!(lcs_dp(b"abc", b""), 0);
        assert_eq!(lcs_dp(b"abc", b"abc"), 3);
        assert_eq!(lcs_dp(b"abc", b"xyz"), 0);
        assert_eq!(lcs_dp(b"xmjyauz", b"mzjawxu"), 4);
    }

    #[test]
    fn h_matrix_interior_equals_plain_lcs_of_window() {
        let a = b"bacab";
        let b = b"abcabc";
        let (m, n) = (a.len(), b.len());
        let h = BruteHMatrix::new(a, b);
        // string-substring quadrant: window fully inside b:
        // H[m + i, j] with window [m+i, j+m) ∩ pad-free ⇔ i ≤ j ≤ n
        for i in 0..=n {
            for j in i..=n {
                assert_eq!(h.get(m + i, j), lcs_dp(a, &b[i..j]) as i64, "window b[{i}..{j}]");
            }
        }
    }

    #[test]
    fn h_matrix_boundary_rows() {
        let a = b"xyz";
        let b = b"yxzw";
        let (m, n) = (a.len(), b.len());
        let h = BruteHMatrix::new(a, b);
        // H[0, j] = m: the m leading wildcards already match all of a.
        for j in 0..=(m + n) {
            assert_eq!(h.get(0, j), m as i64, "H[0,{j}]");
        }
        // Inverted windows: H[i, j] = j + m - i when i ≥ j + m.
        for i in 0..=(m + n) {
            for j in 0..=(m + n) {
                if i >= j + m {
                    assert_eq!(h.get(i, j), (j + m) as i64 - i as i64, "inverted H[{i},{j}]");
                }
            }
        }
    }

    #[test]
    fn h_matrix_unit_steps() {
        // Adjacent H entries differ by 0 or 1 along rows, and by 0 or -1
        // down columns (a window extension changes the LCS by at most one).
        let a = b"abca";
        let b = b"cabcb";
        let size = a.len() + b.len() + 1;
        let h = BruteHMatrix::new(a, b);
        for i in 0..size {
            for j in 1..size {
                let d = h.get(i, j) - h.get(i, j - 1);
                assert!((0..=1).contains(&d), "row step H[{i},{}]→H[{i},{j}]", j - 1);
            }
        }
        for j in 0..size {
            for i in 1..size {
                let d = h.get(i, j) - h.get(i - 1, j);
                assert!((-1..=0).contains(&d), "col step");
            }
        }
    }
}
