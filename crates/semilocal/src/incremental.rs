//! Incremental semi-local comparison: extending either string updates the
//! kernel by **composition** instead of recombing from scratch.
//!
//! This is Theorem 3.4 put to work as an online API: appending a block
//! `a''` to `a` composes the current kernel with the kernel of
//! `(a'', b)` — O(|a''|·n) comb plus one O(N log N) braid
//! multiplication, against O(|a|·n) for a full recomb. Appending to `b`
//! goes through the flip theorem. Useful for streaming comparisons
//! (growing logs, sequence assembly) where semi-local scores are queried
//! between extensions.

use crate::compose::{compose_horizontal_split, compose_vertical_split, CombinedMultiplier};
use crate::iterative::iterative_combing;
use crate::kernel::SemiLocalKernel;
use crate::recursive::base_kernel;

/// A semi-local kernel maintained under appends to either string.
///
/// # Examples
///
/// ```
/// use slcs_semilocal::incremental::IncrementalKernel;
/// use slcs_semilocal::iterative_combing;
///
/// let mut inc = IncrementalKernel::new(b"ab".to_vec(), b"ba".to_vec());
/// inc.append_a(b"ba");
/// inc.append_b(b"ab");
/// assert_eq!(inc.kernel(), &iterative_combing(b"abba", b"baab"));
/// ```
pub struct IncrementalKernel<T: Eq + Clone + Sync> {
    a: Vec<T>,
    b: Vec<T>,
    kernel: SemiLocalKernel,
    mul: CombinedMultiplier,
}

impl<T: Eq + Clone + Sync> IncrementalKernel<T> {
    /// Builds the initial kernel by a full comb.
    pub fn new(a: Vec<T>, b: Vec<T>) -> Self {
        let kernel = iterative_combing(&a, &b);
        let mul = CombinedMultiplier::new((a.len() + b.len()).max(2));
        IncrementalKernel { a, b, kernel, mul }
    }

    /// Current first string.
    pub fn a(&self) -> &[T] {
        &self.a
    }

    /// Current second string.
    pub fn b(&self) -> &[T] {
        &self.b
    }

    /// The kernel of the current pair.
    pub fn kernel(&self) -> &SemiLocalKernel {
        &self.kernel
    }

    /// Appends a block to `a`: combs `(suffix, b)` and composes below the
    /// existing kernel.
    pub fn append_a(&mut self, suffix: &[T]) {
        if suffix.is_empty() {
            return;
        }
        let bottom = if let Some(k) = base_kernel(suffix, &self.b) {
            k
        } else {
            iterative_combing(suffix, &self.b)
        };
        self.kernel = compose_vertical_split(&self.kernel, &bottom, &mut self.mul);
        self.a.extend_from_slice(suffix);
    }

    /// Appends a block to `b`: combs `(a, suffix)` and composes to the
    /// right of the existing kernel (via the flip theorem internally).
    pub fn append_b(&mut self, suffix: &[T]) {
        if suffix.is_empty() {
            return;
        }
        let right = if let Some(k) = base_kernel(&self.a, suffix) {
            k
        } else {
            iterative_combing(&self.a, suffix)
        };
        self.kernel = compose_horizontal_split(&self.kernel, &right, &mut self.mul);
        self.b.extend_from_slice(suffix);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x1C)
    }

    #[test]
    fn appending_blocks_matches_full_recomb() {
        let mut rng = rng();
        let mut inc = IncrementalKernel::new(Vec::<u8>::new(), Vec::<u8>::new());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for step in 0..12 {
            let block: Vec<u8> =
                (0..rng.random_range(0..6)).map(|_| rng.random_range(0..3)).collect();
            if step % 2 == 0 {
                inc.append_a(&block);
                a.extend_from_slice(&block);
            } else {
                inc.append_b(&block);
                b.extend_from_slice(&block);
            }
            assert_eq!(inc.kernel(), &iterative_combing(&a, &b), "step {step}");
            assert_eq!(inc.a(), a.as_slice());
            assert_eq!(inc.b(), b.as_slice());
        }
    }

    #[test]
    fn char_by_char_streaming() {
        let text = b"semilocal";
        let mut inc = IncrementalKernel::new(b"semi".to_vec(), Vec::new());
        for &c in text {
            inc.append_b(&[c]);
        }
        assert_eq!(inc.kernel(), &iterative_combing(b"semi", text));
        assert_eq!(inc.kernel().lcs(), 4);
    }

    #[test]
    fn empty_appends_are_noops() {
        let mut inc = IncrementalKernel::new(b"xy".to_vec(), b"yx".to_vec());
        let before = inc.kernel().clone();
        inc.append_a(&[]);
        inc.append_b(&[]);
        assert_eq!(inc.kernel(), &before);
    }
}
