//! Recursive combing (Listing 3 of the paper): divide-and-conquer over
//! the LCS grid, composing sub-kernels by sticky braid multiplication.
//!
//! The recursion halves the longer string; a split of `a` composes
//! directly (Theorem 3.4), a split of `b` recurses on the swapped problem
//! `(b_half, a)` and flips the composed result back (Theorem 3.5), exactly
//! as in the listing. Total work is O(mn log(m+n) / …) — asymptotically
//! dominated by the leaf combs, with log-linear composition overhead —
//! and the algorithm exists mainly as the skeleton for its parallel and
//! hybrid descendants.

use crate::compose::{compose_vertical_split, BraidMultiplier, CombinedMultiplier};
use crate::kernel::SemiLocalKernel;
use slcs_perm::Permutation;

/// Recursive combing down to single-character cells (Listing 3).
///
/// # Examples
///
/// ```
/// use slcs_semilocal::{iterative_combing, recursive_combing};
///
/// let a = b"dynamic";
/// let b = b"programming";
/// assert_eq!(recursive_combing(a, b), iterative_combing(a, b));
/// ```
pub fn recursive_combing<T: Eq>(a: &[T], b: &[T]) -> SemiLocalKernel {
    let mut mul = CombinedMultiplier::new((a.len() + b.len()).max(2));
    recursive_combing_with(a, b, &mut mul, &|a, b| base_kernel(a, b))
}

/// Recursive combing with a custom multiplier and leaf solver.
///
/// The recursion bottoms out when `leaf` returns `Some` — the default
/// leaf handles only trivial cases (empty strings and 1×1 grids, the
/// bases of Listing 3); the hybrid algorithm (Listing 6) supplies a leaf
/// that switches to iterative combing below a size threshold.
pub fn recursive_combing_with<T: Eq>(
    a: &[T],
    b: &[T],
    mul: &mut impl BraidMultiplier,
    leaf: &impl Fn(&[T], &[T]) -> Option<SemiLocalKernel>,
) -> SemiLocalKernel {
    if let Some(k) = leaf(a, b) {
        return k;
    }
    if a.len() < b.len() {
        // Split b; recurse on the swapped problem and flip back.
        let (b_left, b_right) = b.split_at(b.len() / 2);
        let l = recursive_combing_with(b_left, a, mul, leaf);
        let r = recursive_combing_with(b_right, a, mul, leaf);
        compose_vertical_split(&l, &r, mul).flip()
    } else {
        let (a_left, a_right) = a.split_at(a.len() / 2);
        let l = recursive_combing_with(a_left, b, mul, leaf);
        let r = recursive_combing_with(a_right, b, mul, leaf);
        compose_vertical_split(&l, &r, mul)
    }
}

/// The bases of Listing 3, extended to empty strings: an empty grid has
/// the identity kernel; a 1×1 match cell the identity kernel of order 2;
/// a 1×1 mismatch cell the zero kernel (order-2 reversal).
pub(crate) fn base_kernel<T: Eq>(a: &[T], b: &[T]) -> Option<SemiLocalKernel> {
    let (m, n) = (a.len(), b.len());
    if m == 0 || n == 0 {
        return Some(SemiLocalKernel::new(Permutation::identity(m + n), m, n));
    }
    if m == 1 && n == 1 {
        let kernel = if a[0] == b[0] { Permutation::identity(2) } else { Permutation::reversal(2) };
        return Some(SemiLocalKernel::new(kernel, 1, 1));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::iterative_combing;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x2EC)
    }

    fn random_string(rng: &mut impl rand::Rng, len: usize, sigma: u8) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn matches_iterative_on_random_inputs() {
        let mut rng = rng();
        for _ in 0..25 {
            let m = rng.random_range(0..24);
            let n = rng.random_range(0..24);
            let a = random_string(&mut rng, m, 3);
            let b = random_string(&mut rng, n, 3);
            assert_eq!(recursive_combing(&a, &b), iterative_combing(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn matches_iterative_on_extreme_shapes() {
        let mut rng = rng();
        // very lopsided grids exercise both split directions
        for (m, n) in [(1usize, 40usize), (40, 1), (2, 33), (33, 2), (64, 64)] {
            let a = random_string(&mut rng, m, 2);
            let b = random_string(&mut rng, n, 2);
            assert_eq!(recursive_combing(&a, &b), iterative_combing(&a, &b));
        }
    }

    #[test]
    fn identical_strings_give_identity_like_lcs() {
        let a = b"mississippi";
        let k = recursive_combing(a, a);
        assert_eq!(k.lcs(), a.len());
    }
}
