//! Measured scheduling cost model behind [`Scheduling::Auto`].
//!
//! The hardcoded mode choice this replaces was wrong in both
//! directions: the barrier `team` mode wins when diagonals are long and
//! threads plentiful, but *loses 2×* to a per-diagonal fork/join when
//! short diagonals barrier-thrash — and on a 1-CPU box every parallel
//! mode loses to sequential. Which regime a given `(m, n, threads)`
//! lands in is a property of the machine, so it is **measured**, not
//! guessed: `slcs tune` runs a calibration sweep, fits per-mode
//! crossover areas, and writes a versioned profile that
//! [`Scheduling::Auto`] consults at dispatch time.
//!
//! # Profile format (`perf/tuning.json`)
//!
//! ```json
//! {
//!   "tuning_version": 1,
//!   "entries": [
//!     { "threads": 1, "max_area": 0, "mode": "work_steal", "grain": 0 },
//!     { "threads": 8, "max_area": 16777216, "mode": "pool_per_diag", "grain": 8192 },
//!     { "threads": 8, "max_area": 0, "mode": "work_steal", "grain": 8192 }
//!   ]
//! }
//! ```
//!
//! Lookup for a request `(area = m·n, threads)`:
//!
//! 1. pick the **largest `threads` bucket ≤ the requested budget** (so
//!    an 8-thread profile entry serves a 6-thread request, and the
//!    1-thread entry is the floor);
//! 2. within that bucket, take the **first entry whose `max_area`
//!    covers the request** (`area ≤ max_area`, with `0` meaning
//!    unbounded — the bucket's catch-all last line).
//!
//! `grain: 0` defers to [`par_grain`] (the `SLCS_PAR_GRAIN` override
//! keeps working). The profile is loaded once per process: the
//! `SLCS_TUNING` env var names an explicit file, else
//! `perf/tuning.json` relative to the working directory, else the
//! builtin default table ([`TuningProfile::builtin`]) — which simply
//! routes everything to [`Scheduling::WorkSteal`], whose internal
//! sequential fallback already handles small grids and 1-thread
//! budgets. A missing or unparsable profile therefore degrades to a
//! sane choice, never an error.

use std::sync::OnceLock;

use crate::antidiag::{par_grain, Scheduling};

/// Version stamp written to and required of profile files; bump on any
/// incompatible format change.
pub const TUNING_VERSION: u64 = 1;

/// One profile line: "for budgets ≥ `threads` and grids up to
/// `max_area`, use `mode` with `grain`".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TuningEntry {
    /// Thread-budget bucket this entry belongs to.
    pub threads: usize,
    /// Largest `m·n` this entry covers; `0` = unbounded.
    pub max_area: u64,
    /// Concrete mode to run ([`Scheduling::Auto`] is rejected at parse).
    pub mode: Scheduling,
    /// Parallel grain in cells; `0` defers to [`par_grain`].
    pub grain: usize,
}

/// A loaded scheduling profile. See the module docs for the lookup
/// semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TuningProfile {
    pub version: u64,
    pub entries: Vec<TuningEntry>,
}

impl TuningProfile {
    /// The shipped default when no measured profile exists: work
    /// stealing everywhere. Its leader-local fast path makes it the
    /// safest all-round choice — it degrades to sequential speed when
    /// the grid or the machine cannot feed a second worker.
    pub fn builtin() -> TuningProfile {
        TuningProfile {
            version: TUNING_VERSION,
            entries: vec![TuningEntry {
                threads: 1,
                max_area: 0,
                mode: Scheduling::WorkSteal,
                grain: 0,
            }],
        }
    }

    /// Resolves `(mode, grain)` for a grid of `area = m·n` cells under
    /// a `threads` budget. Falls back to the builtin choice when no
    /// entry matches (e.g. an empty profile).
    pub fn plan(&self, area: u64, threads: usize) -> (Scheduling, usize) {
        let bucket = self
            .entries
            .iter()
            .map(|e| e.threads)
            .filter(|&t| t <= threads)
            .max()
            .or_else(|| self.entries.iter().map(|e| e.threads).min());
        let chosen = bucket.and_then(|b| {
            self.entries
                .iter()
                .filter(|e| e.threads == b)
                .find(|e| e.max_area == 0 || area <= e.max_area)
        });
        match chosen {
            Some(e) => (e.mode, if e.grain == 0 { par_grain() } else { e.grain }),
            None => (Scheduling::WorkSteal, par_grain()),
        }
    }

    /// Serializes in the exact shape [`parse_profile`] accepts.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"tuning_version\": {},\n", self.version));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{ \"threads\": {}, \"max_area\": {}, \"mode\": \"{}\", \"grain\": {} }}{comma}\n",
                e.threads,
                e.max_area,
                e.mode.token(),
                e.grain
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Extracts the number following `"key":` anywhere in `text`.
fn num_field(text: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts the string following `"key":` anywhere in `text`.
fn str_field<'t>(text: &'t str, key: &str) -> Option<&'t str> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)? + pat.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start().strip_prefix('"')?;
    rest.split('"').next()
}

/// Parses a profile file. Deliberately a scanner, not a JSON parser —
/// the format is machine-written by `slcs tune` (see
/// [`TuningProfile::to_json`]) and the workspace has no serde; the
/// scanner accepts exactly the shapes `to_json` emits plus benign
/// whitespace variation.
pub fn parse_profile(text: &str) -> Result<TuningProfile, String> {
    let version = num_field(text, "tuning_version").ok_or("missing \"tuning_version\"")?;
    if version != TUNING_VERSION {
        return Err(format!("tuning_version {version} != supported {TUNING_VERSION}"));
    }
    let list_at = text.find("\"entries\"").ok_or("missing \"entries\"")?;
    let mut entries = Vec::new();
    let mut rest = &text[list_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}').ok_or("unterminated entry object")? + open;
        let obj = &rest[open..=close];
        let mode_token = str_field(obj, "mode").ok_or("entry missing \"mode\"")?;
        let mode = Scheduling::from_token(mode_token)
            .ok_or_else(|| format!("unknown mode {mode_token:?}"))?;
        if mode == Scheduling::Auto {
            return Err("profile entries must name a concrete mode, not \"auto\"".into());
        }
        entries.push(TuningEntry {
            threads: num_field(obj, "threads").ok_or("entry missing \"threads\"")? as usize,
            max_area: num_field(obj, "max_area").ok_or("entry missing \"max_area\"")?,
            mode,
            grain: num_field(obj, "grain").ok_or("entry missing \"grain\"")? as usize,
        });
        rest = &rest[close + 1..];
    }
    if entries.is_empty() {
        return Err("profile has no entries".into());
    }
    Ok(TuningProfile { version, entries })
}

/// The process-wide profile: `SLCS_TUNING` file if set, else
/// `perf/tuning.json` in the working directory, else
/// [`TuningProfile::builtin`]. Loaded once; malformed files fall back
/// to the builtin (a tuning profile must never turn into a crash).
pub fn profile() -> &'static TuningProfile {
    static PROFILE: OnceLock<TuningProfile> = OnceLock::new();
    PROFILE.get_or_init(|| {
        let path = std::env::var("SLCS_TUNING").unwrap_or_else(|_| "perf/tuning.json".into());
        match std::fs::read_to_string(&path) {
            Ok(text) => parse_profile(&text).unwrap_or_else(|_| TuningProfile::builtin()),
            Err(_) => TuningProfile::builtin(),
        }
    })
}

/// Resolves the concrete `(mode, grain)` that [`Scheduling::Auto`]
/// runs for an `m × n` grid under a `threads` budget. Never returns
/// [`Scheduling::Auto`] (profiles cannot contain it).
pub fn auto_plan(m: usize, n: usize, threads: usize) -> (Scheduling, usize) {
    profile().plan(m as u64 * n as u64, threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuningProfile {
        TuningProfile {
            version: TUNING_VERSION,
            entries: vec![
                TuningEntry { threads: 1, max_area: 0, mode: Scheduling::WorkSteal, grain: 0 },
                TuningEntry {
                    threads: 8,
                    max_area: 1 << 24,
                    mode: Scheduling::PoolPerDiag,
                    grain: 4096,
                },
                TuningEntry { threads: 8, max_area: 0, mode: Scheduling::Team, grain: 8192 },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let p = sample();
        assert_eq!(parse_profile(&p.to_json()).unwrap(), p);
    }

    #[test]
    fn lookup_picks_largest_bucket_then_first_covering_area() {
        let p = sample();
        // 8-thread request, small grid → the 8-bucket's bounded entry.
        assert_eq!(p.plan(1 << 20, 8), (Scheduling::PoolPerDiag, 4096));
        // 8-thread request, huge grid → the 8-bucket's catch-all.
        assert_eq!(p.plan(1 << 30, 8), (Scheduling::Team, 8192));
        // 6-thread request rounds *down* to the 1-thread bucket.
        assert_eq!(p.plan(1 << 30, 6), (Scheduling::WorkSteal, par_grain()));
        // Over-bucket budgets reuse the largest bucket.
        assert_eq!(p.plan(1 << 20, 64), (Scheduling::PoolPerDiag, 4096));
    }

    #[test]
    fn below_every_bucket_falls_back_to_smallest() {
        let mut p = sample();
        p.entries.retain(|e| e.threads == 8);
        // threads=2 < every bucket: use the smallest bucket rather than
        // failing.
        assert_eq!(p.plan(1 << 20, 2), (Scheduling::PoolPerDiag, 4096));
    }

    #[test]
    fn builtin_routes_everything_to_work_steal() {
        let p = TuningProfile::builtin();
        for (area, threads) in [(1u64, 1usize), (1 << 28, 8), (u64::MAX, 128)] {
            assert_eq!(p.plan(area, threads), (Scheduling::WorkSteal, par_grain()));
        }
    }

    #[test]
    fn parse_rejects_bad_profiles() {
        assert!(parse_profile("{}").is_err(), "missing version");
        assert!(
            parse_profile("{\"tuning_version\": 999, \"entries\": []}").is_err(),
            "wrong version"
        );
        let auto = "{\"tuning_version\": 1, \"entries\": [ { \"threads\": 1, \"max_area\": 0, \"mode\": \"auto\", \"grain\": 0 } ]}";
        assert!(parse_profile(auto).is_err(), "auto must be rejected");
        let empty = "{\"tuning_version\": 1, \"entries\": []}";
        assert!(parse_profile(empty).is_err(), "no entries");
    }
}
