//! Kernel composition (Theorem 3.4): gluing the kernels of `a'` vs `b`
//! and `a''` vs `b` into the kernel of `a'a''` vs `b` by one sticky braid
//! multiplication.
//!
//! # Derivation of the gluing
//!
//! Stack the `a'` grid (rows `0..m'`) on top of the `a''` grid and cut
//! along the interface. Follow each strand from its global start, through
//! the interface, to its global end, using the suite's boundary
//! conventions (see [`crate::kernel`]). With the intermediate coordinate
//! `t` ordered as
//!
//! * `t ∈ [0, m'')` — bottom-left starts that have not met the interface,
//! * `t ∈ [m'', m''+n)` — interface column `t − m''`,
//! * `t ∈ [m''+n, m+n)` — strands already finished on the upper right edge,
//!
//! the two stages become permutations of order `m+n`:
//!
//! ```text
//! G1 = I_{m''} ⊕ P_{a',b}        (identity block at the low indices)
//! G2 = P_{a'',b} ⊕ I_{m'}        (identity block at the high indices)
//! P_{a,b} = G1 ⊙ G2              (Demazure / distance product)
//! ```
//!
//! A split of `b` reduces to this by the flip theorem (Theorem 3.5):
//! `P_{a,b'b''} = flip( flip(P_{a,b'}) ∘glue∘ flip(P_{a,b''}) )`.

use slcs_braid::BraidMulWorkspace;
use slcs_perm::{PermIndex, Permutation};

use crate::kernel::SemiLocalKernel;

/// Pluggable braid-multiplication backend for composition. The paper's
/// hybrid algorithms pass a shared [`BraidMulWorkspace`]-backed
/// multiplier; tests pass the basic steady ant.
pub trait BraidMultiplier {
    /// Demazure product of two equal-order permutations.
    fn multiply(&mut self, p: &Permutation, q: &Permutation) -> Permutation;
}

/// Backend using the paper's *combined* configuration (memory pool +
/// precalc), reusing one workspace across calls.
pub struct CombinedMultiplier {
    ws: BraidMulWorkspace,
}

impl CombinedMultiplier {
    /// Workspace sized for products of order up to `max_order`.
    pub fn new(max_order: usize) -> Self {
        CombinedMultiplier { ws: BraidMulWorkspace::new(max_order) }
    }
}

impl BraidMultiplier for CombinedMultiplier {
    fn multiply(&mut self, p: &Permutation, q: &Permutation) -> Permutation {
        if p.len() > self.ws.capacity() {
            self.ws = BraidMulWorkspace::new(p.len().next_power_of_two());
        }
        self.ws.multiply(p, q, Some(slcs_braid::PrecalcTables::global()))
    }
}

/// Backend that allocates a fresh basic steady ant per call.
pub struct BasicMultiplier;

impl BraidMultiplier for BasicMultiplier {
    fn multiply(&mut self, p: &Permutation, q: &Permutation) -> Permutation {
        slcs_braid::steady_ant(p, q)
    }
}

/// Backend using the parallel steady ant with a fixed fork depth.
pub struct ParallelMultiplier {
    /// Number of top recursion levels to fork (Listing 5's threshold).
    pub depth: usize,
}

impl BraidMultiplier for ParallelMultiplier {
    fn multiply(&mut self, p: &Permutation, q: &Permutation) -> Permutation {
        slcs_braid::parallel_steady_ant(p, q, self.depth)
    }
}

/// Glues `P_{a',b}` (as `top`) and `P_{a'',b}` (as `bottom`) into
/// `P_{a'a'', b}` — a split of the **first** string.
///
/// # Panics
///
/// Panics if `top.n() != bottom.n()`.
pub fn compose_vertical_split(
    top: &SemiLocalKernel,
    bottom: &SemiLocalKernel,
    mul: &mut impl BraidMultiplier,
) -> SemiLocalKernel {
    let n = top.n();
    assert_eq!(n, bottom.n(), "composition requires a common second string");
    let m1 = top.m();
    let m2 = bottom.m();
    let order = m1 + m2 + n;

    // G1 = I_{m2} ⊕ K1 (identity on [0, m2), K1 shifted by m2).
    let mut g1 = vec![0 as PermIndex; order];
    for (s, slot) in g1.iter_mut().enumerate().take(m2) {
        *slot = s as PermIndex;
    }
    for (s1, &e1) in top.permutation().forward().iter().enumerate() {
        g1[m2 + s1] = m2 as PermIndex + e1;
    }

    // G2 = K2 ⊕ I_{m1} (K2 on [0, m2+n), identity on the top m1 indices).
    let mut g2 = vec![0 as PermIndex; order];
    g2[..m2 + n].copy_from_slice(bottom.permutation().forward());
    for (t, slot) in g2.iter_mut().enumerate().skip(m2 + n) {
        *slot = t as PermIndex;
    }

    let product = mul.multiply(
        &Permutation::from_forward_unchecked(g1),
        &Permutation::from_forward_unchecked(g2),
    );
    SemiLocalKernel::new(product, m1 + m2, n)
}

/// Glues `P_{a,b'}` (as `left`) and `P_{a,b''}` (as `right`) into
/// `P_{a, b'b''}` — a split of the **second** string, via three flips
/// around [`compose_vertical_split`].
///
/// # Panics
///
/// Panics if `left.m() != right.m()`.
pub fn compose_horizontal_split(
    left: &SemiLocalKernel,
    right: &SemiLocalKernel,
    mul: &mut impl BraidMultiplier,
) -> SemiLocalKernel {
    assert_eq!(left.m(), right.m(), "composition requires a common first string");
    compose_vertical_split(&left.flip(), &right.flip(), mul).flip()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative::iterative_combing;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xC0DE)
    }

    fn random_string(rng: &mut impl rand::Rng, len: usize, sigma: u8) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn vertical_split_matches_direct_combing() {
        let mut rng = rng();
        for _ in 0..30 {
            let m1 = rng.random_range(0..12);
            let m2 = rng.random_range(0..12);
            let n = rng.random_range(0..12);
            let a1 = random_string(&mut rng, m1, 3);
            let a2 = random_string(&mut rng, m2, 3);
            let b = random_string(&mut rng, n, 3);
            let top = iterative_combing(&a1, &b);
            let bottom = iterative_combing(&a2, &b);
            let composed = compose_vertical_split(&top, &bottom, &mut BasicMultiplier);
            let a: Vec<u8> = a1.iter().chain(&a2).copied().collect();
            let direct = iterative_combing(&a, &b);
            assert_eq!(composed, direct, "a1={a1:?} a2={a2:?} b={b:?}");
        }
    }

    #[test]
    fn horizontal_split_matches_direct_combing() {
        let mut rng = rng();
        for _ in 0..30 {
            let m = rng.random_range(0..12);
            let n1 = rng.random_range(0..12);
            let n2 = rng.random_range(0..12);
            let a = random_string(&mut rng, m, 3);
            let b1 = random_string(&mut rng, n1, 3);
            let b2 = random_string(&mut rng, n2, 3);
            let left = iterative_combing(&a, &b1);
            let right = iterative_combing(&a, &b2);
            let composed = compose_horizontal_split(&left, &right, &mut BasicMultiplier);
            let b: Vec<u8> = b1.iter().chain(&b2).copied().collect();
            let direct = iterative_combing(&a, &b);
            assert_eq!(composed, direct, "a={a:?} b1={b1:?} b2={b2:?}");
        }
    }

    #[test]
    fn all_multiplier_backends_agree() {
        let mut rng = rng();
        let a1 = random_string(&mut rng, 40, 4);
        let a2 = random_string(&mut rng, 30, 4);
        let b = random_string(&mut rng, 50, 4);
        let top = iterative_combing(&a1, &b);
        let bottom = iterative_combing(&a2, &b);
        let basic = compose_vertical_split(&top, &bottom, &mut BasicMultiplier);
        let combined = compose_vertical_split(&top, &bottom, &mut CombinedMultiplier::new(128));
        let parallel = compose_vertical_split(&top, &bottom, &mut ParallelMultiplier { depth: 2 });
        assert_eq!(basic, combined);
        assert_eq!(basic, parallel);
    }

    #[test]
    fn composing_with_empty_piece_is_identity_like() {
        let a = b"abcab";
        let b = b"bca";
        let whole = iterative_combing(a, b);
        let empty = iterative_combing(b"", b.as_slice());
        let glued = compose_vertical_split(&empty, &whole, &mut BasicMultiplier);
        assert_eq!(glued, whole);
        let glued = compose_vertical_split(&whole, &empty, &mut BasicMultiplier);
        assert_eq!(glued, whole);
    }
}
