//! Semi-local LCS via sticky braid combing — the primary contribution of
//! Mishin, Berezun & Tiskin, *Efficient Parallel Algorithms for String
//! Comparison* (ICPP 2021).
//!
//! The semi-local LCS problem asks for the LCS of `a` against **every**
//! substring of `b`, of `b` against every substring of `a`, and of every
//! prefix against every suffix in both directions — all encoded in one
//! permutation of `[0, m+n)`, the [`SemiLocalKernel`], computable in the
//! same O(mn) time as a single LCS.
//!
//! # Algorithms
//!
//! | paper name | function |
//! |---|---|
//! | `semi_rowmajor` (Listing 1) | [`iterative_combing`] |
//! | recursive combing (Listing 3) | [`recursive_combing`] |
//! | `semi_antidiag` (Listing 4, branching) | [`antidiag_combing`] |
//! | `semi_antidiag_SIMD` (branchless) | [`antidiag_combing_branchless`] |
//! | 16-bit branchless variant | [`antidiag_combing_u16`] |
//! | `semi_load_balanced` | [`load_balanced_combing`] |
//! | `semi_hybrid` (Listing 6) | [`hybrid_combing`] |
//! | `semi_hybrid_iterative` (Listing 7) | [`grid_hybrid_combing`] |
//!
//! All produce bit-identical kernels (cross-tested); they differ only in
//! computation order, parallelism, and constant factors.
//!
//! # Example
//!
//! ```
//! use slcs_semilocal::iterative_combing;
//!
//! let kernel = iterative_combing(b"define", b"design");
//! let scores = kernel.index();
//! assert_eq!(scores.lcs(), 4);                  // "dein"
//! assert_eq!(scores.string_substring(0, 3), 2); // vs "des"
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod antidiag;
pub mod compose;
pub mod edit;
pub mod hybrid;
pub mod incremental;
pub mod iterative;
pub mod kernel;
pub mod load_balanced;
pub mod recursive;
pub mod reference;
pub mod simd;
pub mod tuning;

pub use antidiag::{
    antidiag_combing, antidiag_combing_branchless, antidiag_combing_u16, par_antidiag_combing,
    par_antidiag_combing_branchless, par_antidiag_combing_branchless_grain,
    par_antidiag_combing_branchless_sched, par_antidiag_combing_branchless_untraced,
    par_antidiag_combing_u16, par_grain, Scheduling,
};
pub use edit::EditDistances;
pub use hybrid::{grid_hybrid_combing, hybrid_combing};
pub use incremental::IncrementalKernel;
pub use iterative::iterative_combing;
pub use kernel::{SemiLocalKernel, SemiLocalScores};
pub use load_balanced::load_balanced_combing;
pub use recursive::recursive_combing;
pub use simd::{antidiag_combing_simd, simd_support};
pub use tuning::{auto_plan, parse_profile, TuningEntry, TuningProfile, TUNING_VERSION};
