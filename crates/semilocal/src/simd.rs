//! Explicit SIMD anti-diagonal combing (x86-64).
//!
//! The paper's `semi_antidiag_SIMD` is hand-written AVX2: eight 32-bit
//! strand lanes per instruction, branch-free blends. This module is that
//! implementation — plus the paper's **future-work AVX-512 variant**
//! (§6): the combing inner loop expressed as *masked pairwise
//! minimum/maximum*, which AVX-512 provides natively:
//!
//! ```text
//! mismatch lanes:  h' = min(h, v), v' = max(h, v)   (swap iff h > v)
//! match lanes:     h' = v,         v' = h           (always swap)
//! ```
//!
//! Characters are `u32` here (use [`slcs_datagen::synthetic`]'s helpers or
//! any dense re-encoding); strand indices must stay below `i32::MAX`
//! (asserted), which permits signed lane compares on AVX2.
//!
//! Everything is runtime-detected: [`antidiag_combing_simd`] dispatches
//! AVX-512 → AVX2 → the portable branchless loop, and always produces the
//! identical kernel (cross-tested).

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

use crate::antidiag::{antidiag_combing_branchless, diag_ranges};
use crate::iterative::build_kernel;
use crate::kernel::SemiLocalKernel;

/// Which SIMD path [`antidiag_combing_simd`] will take on this machine.
pub fn simd_support() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            return "avx512";
        }
        if is_x86_feature_detected!("avx2") {
            return "avx2";
        }
    }
    "scalar"
}

/// Anti-diagonal combing with explicit SIMD, dispatching on the running
/// CPU (AVX-512 masked min/max → AVX2 blends → portable branchless).
///
/// # Panics
///
/// Panics if `m + n ≥ i32::MAX` (lane compares are signed).
pub fn antidiag_combing_simd(a: &[u32], b: &[u32]) -> SemiLocalKernel {
    assert!(a.len() + b.len() < i32::MAX as usize, "SIMD combing requires m + n < 2³¹");
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") {
            // SAFETY: feature checked above.
            return unsafe { comb_dispatch(a, b, Isa::Avx512) };
        }
        if is_x86_feature_detected!("avx2") {
            // SAFETY: feature checked above.
            return unsafe { comb_dispatch(a, b, Isa::Avx2) };
        }
    }
    antidiag_combing_branchless(a, b)
}

/// Forces the AVX2 path (for benchmarking the two ISAs against each
/// other); falls back to scalar if AVX2 is unavailable.
pub fn antidiag_combing_avx2(a: &[u32], b: &[u32]) -> SemiLocalKernel {
    assert!(a.len() + b.len() < i32::MAX as usize);
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 presence was just verified by the runtime feature check.
            return unsafe { comb_dispatch(a, b, Isa::Avx2) };
        }
    }
    antidiag_combing_branchless(a, b)
}

#[cfg(target_arch = "x86_64")]
#[derive(Clone, Copy, PartialEq)]
enum Isa {
    Avx2,
    Avx512,
}

/// Sweeps the grid in anti-diagonals, processing each with the selected
/// ISA kernel plus a scalar tail.
///
/// # Safety
///
/// The caller must have verified the corresponding CPU feature.
#[cfg(target_arch = "x86_64")]
unsafe fn comb_dispatch(a: &[u32], b: &[u32], isa: Isa) -> SemiLocalKernel {
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        // PANIC: base_kernel never fails when one side is empty.
        return crate::recursive::base_kernel(a, b).expect("empty grid has a trivial kernel");
    }
    let a_rev: Vec<u32> = a.iter().rev().copied().collect();
    let mut h_strands: Vec<u32> = (0..m as u32).collect();
    let mut v_strands: Vec<u32> = (m as u32..(m + n) as u32).collect();
    for d in 0..(m + n - 1) {
        let (h0, v0, len) = diag_ranges(m, n, d);
        let (ar, bs) = (&a_rev[h0..h0 + len], &b[v0..v0 + len]);
        let (hs, vs) = (&mut h_strands[h0..h0 + len], &mut v_strands[v0..v0 + len]);
        match isa {
            // SAFETY: comb_dispatch is only entered after the matching runtime
            // feature check for the requested ISA.
            Isa::Avx2 => unsafe { diag_avx2(ar, bs, hs, vs) },
            // SAFETY: as above — Isa::Avx512 is only constructed behind the avx512f check.
            Isa::Avx512 => unsafe { diag_avx512(ar, bs, hs, vs) },
        }
    }
    SemiLocalKernel::new(build_kernel(&h_strands, &v_strands), m, n)
}

/// One diagonal with AVX2: 8 lanes of `u32`, blend-based conditional swap.
///
/// # Safety
///
/// Requires AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn diag_avx2(ar: &[u32], bs: &[u32], hs: &mut [u32], vs: &mut [u32]) {
    let len = ar.len();
    let lanes = 8usize;
    let mut k = 0usize;
    // SAFETY: every pointer offset is bounded by the `k + lanes <= len` loop
    // guard, and the unaligned load/store intrinsics carry no alignment
    // requirement; the target feature is guaranteed by the caller's contract.
    unsafe {
        while k + lanes <= len {
            let h = _mm256_loadu_si256(hs.as_ptr().add(k).cast());
            let v = _mm256_loadu_si256(vs.as_ptr().add(k).cast());
            let ac = _mm256_loadu_si256(ar.as_ptr().add(k).cast());
            let bc = _mm256_loadu_si256(bs.as_ptr().add(k).cast());
            let meq = _mm256_cmpeq_epi32(ac, bc);
            // strand ids < 2³¹, so the signed compare is exact
            let mgt = _mm256_cmpgt_epi32(h, v);
            let p = _mm256_or_si256(meq, mgt);
            let nh = _mm256_blendv_epi8(h, v, p);
            let nv = _mm256_blendv_epi8(v, h, p);
            _mm256_storeu_si256(hs.as_mut_ptr().add(k).cast(), nh);
            _mm256_storeu_si256(vs.as_mut_ptr().add(k).cast(), nv);
            k += lanes;
        }
    }
    scalar_tail(&ar[k..], &bs[k..], &mut hs[k..], &mut vs[k..]);
}

/// One diagonal with AVX-512F: 16 lanes, the paper's masked min/max form.
///
/// # Safety
///
/// Requires AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn diag_avx512(ar: &[u32], bs: &[u32], hs: &mut [u32], vs: &mut [u32]) {
    let len = ar.len();
    let lanes = 16usize;
    let mut k = 0usize;
    // SAFETY: every pointer offset is bounded by the `k + lanes <= len` loop
    // guard, and the unaligned load/store intrinsics carry no alignment
    // requirement; the target feature is guaranteed by the caller's contract.
    unsafe {
        while k + lanes <= len {
            let h = _mm512_loadu_si512(hs.as_ptr().add(k).cast());
            let v = _mm512_loadu_si512(vs.as_ptr().add(k).cast());
            let ac = _mm512_loadu_si512(ar.as_ptr().add(k).cast());
            let bc = _mm512_loadu_si512(bs.as_ptr().add(k).cast());
            let meq = _mm512_cmpeq_epu32_mask(ac, bc);
            // mismatch lanes sort the pair; match lanes swap outright:
            // h' = meq ? v : min(h, v);  v' = meq ? h : max(h, v)
            let hmin = _mm512_min_epu32(h, v);
            let hmax = _mm512_max_epu32(h, v);
            let nh = _mm512_mask_blend_epi32(meq, hmin, v);
            let nv = _mm512_mask_blend_epi32(meq, hmax, h);
            _mm512_storeu_si512(hs.as_mut_ptr().add(k).cast(), nh);
            _mm512_storeu_si512(vs.as_mut_ptr().add(k).cast(), nv);
            k += lanes;
        }
    }
    scalar_tail(&ar[k..], &bs[k..], &mut hs[k..], &mut vs[k..]);
}

fn scalar_tail(ar: &[u32], bs: &[u32], hs: &mut [u32], vs: &mut [u32]) {
    for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
        if ac == bc || *h > *v {
            std::mem::swap(h, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative_combing;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x51D)
    }

    #[test]
    fn simd_matches_scalar_on_random_inputs() {
        let mut rng = rng();
        println!("simd path: {}", simd_support());
        for _ in 0..20 {
            let m = rng.random_range(1..200);
            let n = rng.random_range(1..200);
            let a: Vec<u32> = (0..m).map(|_| rng.random_range(0..5)).collect();
            let b: Vec<u32> = (0..n).map(|_| rng.random_range(0..5)).collect();
            let want = iterative_combing(&a, &b);
            assert_eq!(antidiag_combing_simd(&a, &b), want, "m={m} n={n}");
            assert_eq!(antidiag_combing_avx2(&a, &b), want, "avx2 m={m} n={n}");
        }
    }

    #[test]
    fn simd_handles_lane_boundary_lengths() {
        let mut rng = rng();
        for len in [7usize, 8, 9, 15, 16, 17, 31, 32, 33, 64] {
            let a: Vec<u32> = (0..len).map(|_| rng.random_range(0..3)).collect();
            let b: Vec<u32> = (0..len).map(|_| rng.random_range(0..3)).collect();
            assert_eq!(antidiag_combing_simd(&a, &b), iterative_combing(&a, &b), "len={len}");
        }
    }

    #[test]
    fn simd_empty_and_degenerate() {
        assert_eq!(antidiag_combing_simd(&[], &[1, 2]), iterative_combing::<u32>(&[], &[1, 2]));
        assert_eq!(antidiag_combing_simd(&[1], &[1]), iterative_combing::<u32>(&[1], &[1]));
    }

    #[test]
    fn support_reports_a_known_isa() {
        assert!(["avx512", "avx2", "scalar"].contains(&simd_support()));
    }
}
