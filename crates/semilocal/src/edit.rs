//! Semi-local **edit distance** via the blow-up reduction to semi-local
//! LCS.
//!
//! Approximate matching by edit distance is the classical form of
//! semi-local comparison (Sellers 1980; Landau–Vishkin 1989 — §2 of the
//! paper). It reduces to semi-local LCS by *blowing up* both strings:
//! every character `c` becomes the two-character block `($, c)` where `$`
//! is a joker matching only other jokers. Writing `â`, `b̂` for the
//! blown-up strings (lengths `2m`, `2n`),
//!
//! ```text
//! dist(a, b) = m + n − LCS(â, b̂)
//! ```
//!
//! with unit costs for substitution, insertion and deletion. The identity
//! localises: a window `b[i..j)` corresponds to the window
//! `b̂[2i..2j)`, so **one comb of the blown-up strings answers the edit
//! distance of `a` against every substring of `b`** — the semi-local
//! edit-distance problem.
//!
//! Intuition: a joker-joker match contributes min(|x|,|y|) "free" matches
//! that meter the alignment slots; each real match adds 1 on top, and
//! expanding the count shows the LCS of the blow-ups equals
//! `m + n − d(a, b)`. The unit tests pin the identity against the
//! Wagner–Fischer edit-distance DP on random inputs and every window.

use crate::antidiag::antidiag_combing_branchless;
use crate::kernel::SemiLocalScores;

/// Blown-up character: the joker `$` or a real character.
///
/// `Option<T>` with `None` as the joker has exactly the right `Eq`:
/// jokers match jokers, real characters match equal real characters.
type Blown<T> = Option<T>;

/// Blows up a string: `c ↦ ($, c)`.
fn blow_up<T: Clone>(s: &[T]) -> Vec<Blown<T>> {
    let mut out = Vec::with_capacity(2 * s.len());
    for c in s {
        out.push(None);
        out.push(Some(c.clone()));
    }
    out
}

/// Semi-local edit distances of `a` against every substring of `b`,
/// backed by one semi-local LCS kernel of the blown-up strings.
///
/// # Examples
///
/// ```
/// use slcs_semilocal::edit::EditDistances;
///
/// let d = EditDistances::new(b"kitten", b"a sitting kitten");
/// assert_eq!(d.distance(10, 16), 0);        // exact occurrence
/// assert_eq!(d.distance(2, 9), 3);          // "sitting"
/// let best = d.best_window(6);
/// assert_eq!((best.0, best.1), (10, 16));
/// ```
pub struct EditDistances {
    scores: SemiLocalScores,
    m: usize,
    n: usize,
}

impl EditDistances {
    /// Combs the blown-up strings — `O(4mn)` cell updates, O(m+n)
    /// memory — and builds the query index.
    pub fn new<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> Self {
        let kernel = antidiag_combing_branchless(&blow_up(a), &blow_up(b));
        EditDistances { scores: kernel.index(), m: a.len(), n: b.len() }
    }

    /// Length of the pattern `a`.
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// Length of the text `b`.
    pub fn text_len(&self) -> usize {
        self.n
    }

    /// Unit-cost edit distance `dist(a, b[i..j))`.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j > n`.
    pub fn distance(&self, i: usize, j: usize) -> usize {
        assert!(i <= j && j <= self.n, "invalid window [{i}, {j})");
        let lcs = self.scores.string_substring(2 * i, 2 * j);
        self.m + (j - i) - lcs
    }

    /// `dist(a, b)` for the whole text.
    pub fn global(&self) -> usize {
        self.distance(0, self.n)
    }

    /// Edit distances of `a` against every window of length `w`, O(n).
    pub fn window_distances(&self, w: usize) -> Vec<usize> {
        assert!(w <= self.n, "window longer than b");
        // windows of b̂ of length 2w at even offsets = every other entry
        // of the blown-up linear sweep
        self.scores
            .windows_linear(2 * w)
            .into_iter()
            .step_by(2)
            .map(|lcs| self.m + w - lcs)
            .collect()
    }

    /// The closest window of length `w`: `(start, end, distance)`.
    pub fn best_window(&self, w: usize) -> (usize, usize, usize) {
        let (start, dist) = self
            .window_distances(w)
            .into_iter()
            .enumerate()
            .min_by_key(|&(_, d)| d)
            // PANIC: valid `w` (a documented precondition) admits at least one window.
            .expect("at least one window");
        (start, start + w, dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::lcs_dp;
    use rand::{RngExt, SeedableRng};

    fn edit_dp<T: Eq>(a: &[T], b: &[T]) -> usize {
        let n = b.len();
        let mut prev: Vec<u32> = (0..=n as u32).collect();
        let mut cur = vec![0u32; n + 1];
        for (i, ac) in a.iter().enumerate() {
            cur[0] = i as u32 + 1;
            for (j, bc) in b.iter().enumerate() {
                let sub = prev[j] + u32::from(ac != bc);
                cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
            }
            std::mem::swap(&mut prev, &mut cur);
        }
        prev[n] as usize
    }

    #[test]
    fn blow_up_identity_on_global_distance() {
        let a = b"kitten";
        let b = b"sitting";
        // the classical reduction, checked directly
        let lcs = lcs_dp(&blow_up(a), &blow_up(b));
        assert_eq!(a.len() + b.len() - lcs, edit_dp(a, b));
        assert_eq!(edit_dp(a, b), 3);
    }

    #[test]
    fn global_distance_matches_dp_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xED17);
        for _ in 0..25 {
            let m = rng.random_range(0..25);
            let n = rng.random_range(0..25);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..4)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..4)).collect();
            let d = EditDistances::new(&a, &b);
            assert_eq!(d.global(), edit_dp(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn every_window_matches_dp() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xED18);
        for _ in 0..8 {
            let m = rng.random_range(1..12);
            let n = rng.random_range(1..14);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..3)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..3)).collect();
            let d = EditDistances::new(&a, &b);
            for i in 0..=n {
                for j in i..=n {
                    assert_eq!(
                        d.distance(i, j),
                        edit_dp(&a, &b[i..j]),
                        "window [{i},{j}) a={a:?} b={b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_sweep_matches_pointwise() {
        let a = b"acgtt";
        let b = b"ttacgataccgtt";
        let d = EditDistances::new(a, b);
        for w in 1..=b.len() {
            let sweep = d.window_distances(w);
            assert_eq!(sweep.len(), b.len() - w + 1);
            for (i, &dist) in sweep.iter().enumerate() {
                assert_eq!(dist, d.distance(i, i + w), "w={w} i={i}");
            }
        }
    }

    #[test]
    fn exact_occurrence_has_distance_zero() {
        let d = EditDistances::new(b"abc", b"xxabcxx");
        assert_eq!(d.distance(2, 5), 0);
        assert_eq!(d.best_window(3), (2, 5, 0));
    }

    #[test]
    fn empty_pattern_distance_is_window_length() {
        let d = EditDistances::new(b"", b"abcd");
        assert_eq!(d.distance(1, 3), 2);
        assert_eq!(d.global(), 4);
    }
}
