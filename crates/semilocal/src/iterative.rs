//! Iterative combing (Listing 1 of the paper; the paper's `semi_rowmajor`).
//!
//! The sticky braid of the comparison is combed cell by cell in row-major
//! order: at each grid cell the strand entering from the left and the
//! strand entering from the top cross if and only if the cell is a
//! mismatch **and** they have not crossed before. Strand identifiers are
//! assigned so that "have crossed before" reduces to a single comparison
//! (`h_strand > v_strand`), giving an O(mn) time, O(m+n) memory algorithm.
//!
//! This is the **defining implementation** of the suite's kernel
//! conventions: every other combing algorithm is tested to produce the
//! identical permutation.

use slcs_perm::Permutation;

use crate::kernel::SemiLocalKernel;

/// Sequential iterative combing, row-major order. O(mn).
///
/// # Examples
///
/// ```
/// use slcs_semilocal::iterative_combing;
///
/// let k = iterative_combing(b"baabab", b"abaa");
/// let scores = k.index();
/// assert_eq!(scores.lcs(), 3);                    // LCS("baabab", "abaa")
/// assert_eq!(scores.string_substring(1, 4), 3);   // vs "baa"
/// ```
pub fn iterative_combing<T: Eq>(a: &[T], b: &[T]) -> SemiLocalKernel {
    let m = a.len();
    let n = b.len();
    let mut h_strands: Vec<u32> = (0..m as u32).collect();
    let mut v_strands: Vec<u32> = (m as u32..(m + n) as u32).collect();

    comb_rowmajor(a, b, &mut h_strands, &mut v_strands);

    SemiLocalKernel::new(build_kernel(&h_strands, &v_strands), m, n)
}

/// The braid-combing phase on existing strand arrays (phase 2 of
/// Listing 1). Exposed within the crate so the block-structured algorithms
/// (hybrid, Listing 7) can comb sub-grids in place.
pub(crate) fn comb_rowmajor<T: Eq>(a: &[T], b: &[T], h_strands: &mut [u32], v_strands: &mut [u32]) {
    let m = a.len();
    debug_assert_eq!(h_strands.len(), m);
    debug_assert_eq!(v_strands.len(), b.len());
    for (i, ac) in a.iter().enumerate() {
        let h_index = m - 1 - i;
        // Carry the horizontal strand through the row in a register.
        let mut h = h_strands[h_index];
        for (v, bc) in v_strands.iter_mut().zip(b) {
            if ac == bc || h > *v {
                std::mem::swap(&mut h, v);
            }
        }
        h_strands[h_index] = h;
    }
}

/// Phase 3 of Listing 1: map strand identifiers to their end positions
/// (bottom edge `0..n`, then right edge `n..n+m`).
pub(crate) fn build_kernel(h_strands: &[u32], v_strands: &[u32]) -> Permutation {
    let m = h_strands.len();
    let n = v_strands.len();
    let mut forward = vec![0u32; m + n];
    for (l, &s) in h_strands.iter().enumerate() {
        forward[s as usize] = (n + l) as u32;
    }
    for (r, &s) in v_strands.iter().enumerate() {
        forward[s as usize] = r as u32;
    }
    Permutation::from_forward_unchecked(forward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{lcs_dp, BruteHMatrix};
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x17E2)
    }

    fn random_string(rng: &mut impl rand::Rng, len: usize, sigma: u8) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn empty_inputs_give_identity_kernels() {
        let k = iterative_combing::<u8>(&[], &[]);
        assert_eq!(k.permutation().len(), 0);
        assert_eq!(k.lcs(), 0);

        let k = iterative_combing(b"abc", b"");
        assert_eq!(k.permutation(), &Permutation::identity(3));
        assert_eq!(k.lcs(), 0);

        let k = iterative_combing(b"", b"xy");
        assert_eq!(k.permutation(), &Permutation::identity(2));
        assert_eq!(k.lcs(), 0);
    }

    #[test]
    fn single_char_kernels_match_listing_3_bases() {
        // Listing 3: a match yields the identity kernel, a mismatch the
        // zero kernel (the order-2 reversal).
        let k = iterative_combing(b"x", b"x");
        assert_eq!(k.permutation(), &Permutation::identity(2));
        let k = iterative_combing(b"x", b"y");
        assert_eq!(k.permutation(), &Permutation::reversal(2));
    }

    #[test]
    fn global_lcs_matches_dp_random() {
        let mut rng = rng();
        for sigma in [2u8, 4, 26] {
            for _ in 0..14 {
                let m = rng.random_range(0..30);
                let n = rng.random_range(0..30);
                let a = random_string(&mut rng, m, sigma);
                let b = random_string(&mut rng, n, sigma);
                let k = iterative_combing(&a, &b);
                assert_eq!(k.lcs(), lcs_dp(&a, &b), "σ={sigma} a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn full_h_matrix_matches_brute_force() {
        let mut rng = rng();
        for sigma in [2u8, 3, 8] {
            for _ in 0..8 {
                let m = rng.random_range(1..14);
                let n = rng.random_range(1..14);
                let a = random_string(&mut rng, m, sigma);
                let b = random_string(&mut rng, n, sigma);
                let brute = BruteHMatrix::new(&a, &b);
                let scores = iterative_combing(&a, &b).index();
                for i in 0..=(m + n) {
                    for j in 0..=(m + n) {
                        assert_eq!(scores.h(i, j), brute.get(i, j), "H[{i},{j}] a={a:?} b={b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn all_four_quadrant_queries_match_plain_dp() {
        let mut rng = rng();
        for _ in 0..10 {
            let m = rng.random_range(1..12);
            let n = rng.random_range(1..12);
            let a = random_string(&mut rng, m, 3);
            let b = random_string(&mut rng, n, 3);
            let scores = iterative_combing(&a, &b).index();
            for i in 0..=n {
                for j in i..=n {
                    assert_eq!(
                        scores.string_substring(i, j),
                        lcs_dp(&a, &b[i..j]),
                        "string-substring [{i},{j}) a={a:?} b={b:?}"
                    );
                }
            }
            for k in 0..=m {
                for l in k..=m {
                    assert_eq!(
                        scores.substring_string(k, l),
                        lcs_dp(&a[k..l], &b),
                        "substring-string [{k},{l}) a={a:?} b={b:?}"
                    );
                }
            }
            for l in 0..=m {
                for i in 0..=n {
                    assert_eq!(
                        scores.prefix_suffix(l, i),
                        lcs_dp(&a[..l], &b[i..]),
                        "prefix-suffix l={l} i={i} a={a:?} b={b:?}"
                    );
                }
            }
            for k in 0..=m {
                for j in 0..=n {
                    assert_eq!(
                        scores.suffix_prefix(k, j),
                        lcs_dp(&a[k..], &b[..j]),
                        "suffix-prefix k={k} j={j} a={a:?} b={b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn windows_sweep_matches_manual_queries() {
        let a = b"gattaca";
        let b = b"tacatacagat";
        let scores = iterative_combing(a, b).index();
        let w = 4;
        let windows = scores.windows(w);
        assert_eq!(windows.len(), b.len() - w + 1);
        for (i, &score) in windows.iter().enumerate() {
            assert_eq!(score, lcs_dp(a, &b[i..i + w]));
        }
    }

    #[test]
    fn works_with_non_byte_alphabets() {
        let a: Vec<i64> = vec![-3, 0, 7, 7, 2];
        let b: Vec<i64> = vec![0, 7, -3, 2, 2];
        let k = iterative_combing(&a, &b);
        assert_eq!(k.lcs(), lcs_dp(&a, &b));
    }
}
