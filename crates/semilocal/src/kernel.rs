//! The semi-local LCS kernel and its score queries.
//!
//! A comparison of `a` (length `m`) and `b` (length `n`) is summarised by
//! a permutation `P_{a,b}` of `[0, m+n)` — the *kernel* — from which every
//! semi-local score can be read off by a dominance count. This module
//! fixes the suite-wide conventions and derives all four quadrant queries.
//!
//! # Conventions
//!
//! Strand **start** indices (kernel rows) walk the left edge bottom-to-top
//! (`0..m`, so start `s < m` sits at grid row `m−1−s`), then the top edge
//! left-to-right (`m..m+n`). Strand **end** indices (kernel columns) walk
//! the bottom edge left-to-right (`0..n`), then the right edge
//! bottom-to-top (`n..n+m`). These are exactly the conventions of
//! Listing 1 of the paper.
//!
//! With the suite dominance convention
//! `KΣ(i, j) = |{(s, e) ∈ P_{a,b} : s ≥ i, e < j}|`, the score matrix of
//! Definition 3.3 is recovered as
//!
//! ```text
//! H(i, j) = j + m − i − KΣ(i, j)
//! ```
//!
//! and the four quadrants specialise to (all verified against the
//! brute-force oracle in `reference`):
//!
//! ```text
//! LCS(a, b[i..j))       = (j − i) − KΣ(m + i, j)          string-substring
//! LCS(a[k..l), b)       = n − KΣ(m − k, m + n − l)        substring-string
//! LCS(a[0..l), b[i..n)) = (n − i) − KΣ(m + i, n + m − l)  prefix-suffix
//! LCS(a[k..m), b[0..j)) = j − KΣ(m − k, j)                suffix-prefix
//! ```

use slcs_perm::{MergeSortTree, Permutation};

/// The semi-local LCS kernel `P_{a,b}`: the reduced sticky braid of a
/// comparison, stored as a permutation of `[0, m+n)` mapping strand starts
/// to strand ends.
///
/// Construction is via the combing algorithms in this crate
/// (e.g. [`crate::iterative_combing`]); queries that are asked repeatedly
/// should go through [`SemiLocalKernel::index`], which builds an
/// `O(log² N)`-per-query range-counting structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SemiLocalKernel {
    kernel: Permutation,
    m: usize,
    n: usize,
}

impl SemiLocalKernel {
    /// Wraps a raw kernel permutation. `kernel.len()` must equal `m + n`.
    pub fn new(kernel: Permutation, m: usize, n: usize) -> Self {
        assert_eq!(kernel.len(), m + n, "kernel order must be m + n");
        SemiLocalKernel { kernel, m, n }
    }

    /// Length of `a`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Length of `b`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The underlying permutation.
    pub fn permutation(&self) -> &Permutation {
        &self.kernel
    }

    /// Consumes the wrapper, returning the permutation.
    pub fn into_permutation(self) -> Permutation {
        self.kernel
    }

    /// The kernel of the flipped comparison `P_{b,a}` (Theorem 3.5):
    /// a 180° rotation of the permutation matrix.
    pub fn flip(&self) -> SemiLocalKernel {
        SemiLocalKernel { kernel: self.kernel.rotate180(), m: self.n, n: self.m }
    }

    /// Builds the query index (one-off `O(N log N)` cost). The returned
    /// handle is self-contained and can outlive the kernel.
    pub fn index(&self) -> SemiLocalScores {
        SemiLocalScores {
            m: self.m,
            n: self.n,
            tree: MergeSortTree::new(&self.kernel),
            forward: self.kernel.forward().to_vec(),
            inverse: self.kernel.inverse_slice().to_vec(),
        }
    }

    /// Global LCS score `LCS(a, b)`, by a linear scan.
    pub fn lcs(&self) -> usize {
        // LCS(a, b) = n − KΣ(m, n)
        self.n - self.kernel.dominance_sum_scan(self.m, self.n)
    }
}

/// Query handle built from a [`SemiLocalKernel`], answering every
/// semi-local score in `O(log² (m+n))`.
pub struct SemiLocalScores {
    m: usize,
    n: usize,
    tree: MergeSortTree,
    /// Kernel forward map (start → end), for O(1) incremental traversals.
    forward: Vec<u32>,
    /// Kernel inverse map (end → start).
    inverse: Vec<u32>,
}

impl SemiLocalScores {
    /// Length of `a`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Length of `b`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `KΣ(i, j)` — dominance sum over the kernel.
    #[inline]
    pub fn dominance(&self, i: usize, j: usize) -> usize {
        self.tree.dominance_sum(i, j)
    }

    /// `H(i, j)` of Definition 3.3, for `i, j ∈ [0, m+n]`. Negative for
    /// inverted windows (`i > j + m`), exactly as in the paper.
    pub fn h(&self, i: usize, j: usize) -> i64 {
        let m = self.m as i64;
        j as i64 + m - i as i64 - self.dominance(i, j) as i64
    }

    /// `LCS(a, b)`.
    pub fn lcs(&self) -> usize {
        self.string_substring(0, self.n)
    }

    /// **string-substring**: `LCS(a, b[i..j))`.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j > n`.
    pub fn string_substring(&self, i: usize, j: usize) -> usize {
        let (m, n) = (self.m, self.n);
        assert!(i <= j && j <= n, "invalid substring [{i}, {j}) of b (n = {n})");
        (j - i) - self.dominance(m + i, j)
    }

    /// **substring-string**: `LCS(a[k..l), b)`.
    ///
    /// # Panics
    ///
    /// Panics if `k > l` or `l > m`.
    pub fn substring_string(&self, k: usize, l: usize) -> usize {
        let (m, n) = (self.m, self.n);
        assert!(k <= l && l <= m, "invalid substring [{k}, {l}) of a (m = {m})");
        n - self.dominance(m - k, m + n - l)
    }

    /// **prefix-suffix**: `LCS(a[0..l), b[i..n))` — every prefix of `a`
    /// against every suffix of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `l > m` or `i > n`.
    pub fn prefix_suffix(&self, l: usize, i: usize) -> usize {
        let (m, n) = (self.m, self.n);
        assert!(l <= m && i <= n, "invalid prefix/suffix (l = {l}, i = {i})");
        (n - i) - self.dominance(m + i, n + m - l)
    }

    /// **suffix-prefix**: `LCS(a[k..m), b[0..j))` — every suffix of `a`
    /// against every prefix of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `k > m` or `j > n`.
    pub fn suffix_prefix(&self, k: usize, j: usize) -> usize {
        let (m, n) = (self.m, self.n);
        assert!(k <= m && j <= n, "invalid suffix/prefix (k = {k}, j = {j})");
        j - self.dominance(m - k, j)
    }

    /// All string-substring scores for fixed window length `w`:
    /// `out[i] = LCS(a, b[i..i+w))`, for `i in 0..=n-w`. A convenience for
    /// approximate-matching sweeps; `O((n − w) log² N)`. For long sweeps
    /// prefer [`Self::windows_linear`].
    pub fn windows(&self, w: usize) -> Vec<usize> {
        let n = self.n;
        assert!(w <= n, "window longer than b");
        (0..=n - w).map(|i| self.string_substring(i, i + w)).collect()
    }

    /// As [`Self::windows`] but in O(N) total, by sliding the dominance
    /// count along the window diagonal: removing start row `m+i` drops
    /// one nonzero iff its end lands left of the window, and extending
    /// the window admits one iff that end's start is inside.
    pub fn windows_linear(&self, w: usize) -> Vec<usize> {
        let (m, n) = (self.m, self.n);
        assert!(w <= n, "window longer than b");
        let mut out = Vec::with_capacity(n - w + 1);
        // S(i) = KΣ(m+i, i+w); S(0) via one tree query, then O(1) steps.
        let mut s = self.dominance(m, w) as i64;
        out.push((w as i64 - s) as usize);
        for i in 0..(n - w) {
            s -= i64::from((self.forward[m + i] as usize) < i + w);
            s += i64::from((self.inverse[i + w] as usize) > m + i);
            out.push((w as i64 - s) as usize);
        }
        out
    }

    /// As [`Self::windows_linear`] but rayon-parallel: the sweep is cut
    /// into chunks, each seeded by one tree query and slid linearly.
    /// Worth it for texts of millions of characters.
    pub fn par_windows(&self, w: usize) -> Vec<usize> {
        use rayon::prelude::*;
        let (m, n) = (self.m, self.n);
        assert!(w <= n, "window longer than b");
        let total = n - w + 1;
        const CHUNK: usize = 64 * 1024;
        (0..total)
            .into_par_iter()
            .step_by(CHUNK)
            .flat_map_iter(|chunk_start| {
                let chunk_len = CHUNK.min(total - chunk_start);
                let mut s = self.dominance(m + chunk_start, chunk_start + w) as i64;
                let mut out = Vec::with_capacity(chunk_len);
                out.push((w as i64 - s) as usize);
                for i in chunk_start..(chunk_start + chunk_len - 1) {
                    s -= i64::from((self.forward[m + i] as usize) < i + w);
                    s += i64::from((self.inverse[i + w] as usize) > m + i);
                    out.push((w as i64 - s) as usize);
                }
                out
            })
            .collect()
    }

    /// One full row of `H` — `out[j] = H(i, j)` for `j ∈ [0, m+n]` — in
    /// O(N) time, exploiting the unit steps of dominance sums:
    /// `H(i, j+1) = H(i, j) + 1 − [kernel⁻¹(j) ≥ i]`.
    pub fn h_row(&self, i: usize) -> Vec<i64> {
        let size = self.m + self.n + 1;
        assert!(i < size, "row index out of range");
        let mut out = Vec::with_capacity(size);
        let mut h = self.m as i64 - i as i64; // H(i, 0): KΣ(i, 0) = 0
        out.push(h);
        for j in 0..(self.m + self.n) {
            h += 1 - i64::from((self.inverse[j] as usize) >= i);
            out.push(h);
        }
        out
    }

    /// For every window end `j ∈ [1, n]`, the best string-substring score
    /// over all window starts, with the longest such window:
    /// `out[j-1] = (max_i LCS(a, b[i..j)), argmax i)`, preferring smaller
    /// `i` (longer windows) on ties. O(n²) worst case but O(n) per row —
    /// used by approximate matching with variable-length windows.
    pub fn best_start_per_end(&self) -> Vec<(usize, usize)> {
        let (m, n) = (self.m, self.n);
        (1..=n)
            .map(|j| {
                // LCS(a, b[i..j)) = (j − i) − KΣ(m+i, j); sweep i upward,
                // updating the dominance count in O(1) per step.
                let mut s = self.dominance(m, j) as i64;
                let mut best = ((j as i64) - s, 0usize);
                for i in 0..j {
                    s -= i64::from((self.forward[m + i] as usize) < j);
                    let score = (j - (i + 1)) as i64 - s;
                    if score > best.0 {
                        best = (score, i + 1);
                    }
                }
                (best.0 as usize, best.1)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Score correctness is tested end-to-end in `iterative.rs` and the
    // integration tests (kernels produced by combing vs the brute-force
    // oracle); here we only exercise the wrapper plumbing.

    #[test]
    #[should_panic(expected = "kernel order")]
    fn rejects_wrong_order() {
        SemiLocalKernel::new(Permutation::identity(5), 2, 2);
    }

    #[test]
    fn flip_is_involutive() {
        let k = SemiLocalKernel::new(Permutation::reversal(7), 3, 4);
        let back = k.flip().flip();
        assert_eq!(back, k);
        assert_eq!(k.flip().m(), 4);
        assert_eq!(k.flip().n(), 3);
    }

    #[test]
    fn windows_linear_equals_windows() {
        use crate::iterative::iterative_combing;
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x717);
        for _ in 0..10 {
            let m = rng.random_range(1..30);
            let n = rng.random_range(1..30);
            let a: Vec<u8> = (0..m).map(|_| rng.random_range(0..3)).collect();
            let b: Vec<u8> = (0..n).map(|_| rng.random_range(0..3)).collect();
            let scores = iterative_combing(&a, &b).index();
            for w in [1usize, n / 2, n] {
                if w == 0 || w > n {
                    continue;
                }
                assert_eq!(scores.windows_linear(w), scores.windows(w), "w={w} a={a:?} b={b:?}");
            }
        }
    }

    #[test]
    fn par_windows_equals_windows() {
        use crate::iterative::iterative_combing;
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x9A7);
        let a: Vec<u8> = (0..80).map(|_| rng.random_range(0..3)).collect();
        let b: Vec<u8> = (0..500).map(|_| rng.random_range(0..3)).collect();
        let scores = iterative_combing(&a, &b).index();
        for w in [1usize, 37, 80, 499, 500] {
            assert_eq!(scores.par_windows(w), scores.windows_linear(w), "w={w}");
        }
    }

    #[test]
    fn h_row_equals_pointwise_h() {
        use crate::iterative::iterative_combing;
        let a = b"bcaba";
        let b = b"abcbab";
        let scores = iterative_combing(a, b).index();
        let size = a.len() + b.len();
        for i in 0..=size {
            let row = scores.h_row(i);
            for (j, &v) in row.iter().enumerate() {
                assert_eq!(v, scores.h(i, j), "H[{i},{j}]");
            }
        }
    }

    #[test]
    fn best_start_per_end_is_argmax() {
        use crate::iterative::iterative_combing;
        use crate::reference::lcs_dp;
        let a = b"acgtac";
        let b = b"ttacgtaa";
        let scores = iterative_combing(a, b).index();
        for (jm1, &(best, at)) in scores.best_start_per_end().iter().enumerate() {
            let j = jm1 + 1;
            let brute = (0..j).map(|i| lcs_dp(a, &b[i..j])).max().unwrap();
            assert_eq!(best, brute, "end {j}");
            assert_eq!(best, lcs_dp(a, &b[at..j]), "witness start for end {j}");
        }
    }
}
