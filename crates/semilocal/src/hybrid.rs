//! Hybrid combing: recursive decomposition on top, iterative combing at
//! the leaves (Listings 6 and 7 of the paper).
//!
//! * [`hybrid_combing`] / [`hybrid_combing_depth`] — Listing 6: follow the
//!   recursive-combing structure down to a threshold, then switch to
//!   (branchless) iterative combing. The depth flavor is the knob swept in
//!   Figure 6: depth 0 is pure iterative combing; each extra level doubles
//!   the number of independent subproblems at the cost of extra braid
//!   multiplications.
//! * [`par_hybrid_combing_depth`] — the coarse-grained parallel form
//!   (§4.2.2): the outer recursion forks subproblems onto the rayon pool
//!   and composes with the parallel steady ant.
//! * [`grid_hybrid_combing`] — Listing 7 (`semi_hybrid_iterative`): the
//!   outer recursion is flattened into an explicit `m_outer × n_outer`
//!   grid of sub-combs (sized so every sub-grid fits 16-bit strand
//!   indices), followed by a balanced tree reduction that always merges
//!   along the longest side of the current sub-grids.

use rayon::prelude::*;

use crate::antidiag::{
    antidiag_combing_branchless, antidiag_combing_u16, par_antidiag_combing_branchless,
};
use crate::compose::{
    compose_horizontal_split, compose_vertical_split, BraidMultiplier, CombinedMultiplier,
    ParallelMultiplier,
};
use crate::kernel::SemiLocalKernel;
use crate::recursive::{base_kernel, recursive_combing_with};

/// Listing 6 with the paper's size threshold: subproblems with
/// `a.len + b.len ≤ threshold` are combed iteratively (branchless
/// anti-diagonal order); larger ones are split and composed.
pub fn hybrid_combing<T: Eq + Clone + Sync>(a: &[T], b: &[T], threshold: usize) -> SemiLocalKernel {
    let order = (a.len() + b.len()).max(2);
    let mut mul = CombinedMultiplier::new(order);
    recursive_combing_with(a, b, &mut mul, &|a, b| {
        if a.len() + b.len() <= threshold {
            Some(antidiag_combing_branchless(a, b))
        } else {
            base_kernel(a, b)
        }
    })
}

/// Listing 6 parameterized by recursion **depth** instead of size — the
/// exact knob of Figure 6. `depth = 0` is pure iterative combing;
/// `depth = d` produces up to `2^d` independent leaf combs.
pub fn hybrid_combing_depth<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    depth: usize,
) -> SemiLocalKernel {
    let order = (a.len() + b.len()).max(2);
    let mut mul = CombinedMultiplier::new(order);
    hybrid_depth_rec(a, b, depth, &mut mul, false)
}

/// Coarse-grained parallel Listing 6: the two subproblems of each split
/// run as rayon tasks, leaves use the thread-parallel branchless comb,
/// and composition uses the parallel steady ant with `mul_depth` fork
/// levels.
pub fn par_hybrid_combing_depth<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    depth: usize,
    mul_depth: usize,
) -> SemiLocalKernel {
    par_hybrid_depth_rec(a, b, depth, mul_depth)
}

fn hybrid_depth_rec<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    depth: usize,
    mul: &mut impl BraidMultiplier,
    parallel_leaf: bool,
) -> SemiLocalKernel {
    if let Some(k) = base_kernel(a, b) {
        return k;
    }
    if depth == 0 {
        return if parallel_leaf {
            par_antidiag_combing_branchless(a, b)
        } else {
            antidiag_combing_branchless(a, b)
        };
    }
    if a.len() < b.len() {
        let (b_left, b_right) = b.split_at(b.len() / 2);
        let l = hybrid_depth_rec(a, b_left, depth - 1, mul, parallel_leaf);
        let r = hybrid_depth_rec(a, b_right, depth - 1, mul, parallel_leaf);
        compose_horizontal_split(&l, &r, mul)
    } else {
        let (a_left, a_right) = a.split_at(a.len() / 2);
        let l = hybrid_depth_rec(a_left, b, depth - 1, mul, parallel_leaf);
        let r = hybrid_depth_rec(a_right, b, depth - 1, mul, parallel_leaf);
        compose_vertical_split(&l, &r, mul)
    }
}

fn par_hybrid_depth_rec<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    depth: usize,
    mul_depth: usize,
) -> SemiLocalKernel {
    if let Some(k) = base_kernel(a, b) {
        return k;
    }
    if depth == 0 {
        return par_antidiag_combing_branchless(a, b);
    }
    let mut mul = ParallelMultiplier { depth: mul_depth };
    if a.len() < b.len() {
        let (b_left, b_right) = b.split_at(b.len() / 2);
        let (l, r) = rayon::join(
            || par_hybrid_depth_rec(a, b_left, depth - 1, mul_depth),
            || par_hybrid_depth_rec(a, b_right, depth - 1, mul_depth),
        );
        compose_horizontal_split(&l, &r, &mut mul)
    } else {
        let (a_left, a_right) = a.split_at(a.len() / 2);
        let (l, r) = rayon::join(
            || par_hybrid_depth_rec(a_left, b, depth - 1, mul_depth),
            || par_hybrid_depth_rec(a_right, b, depth - 1, mul_depth),
        );
        compose_vertical_split(&l, &r, &mut mul)
    }
}

/// Splits `len` items into `parts` nearly-equal contiguous ranges.
fn partition(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let sz = base + usize::from(p < extra);
        out.push(start..start + sz);
        start += sz;
    }
    out
}

/// Picks the outer grid `(m_outer, n_outer)` for Listing 7: enough
/// sub-grids to occupy `tasks` workers, each sub-grid small enough for
/// 16-bit strand indices, splitting the longer side first so sub-grids
/// stay roughly balanced.
fn optimal_split(m: usize, n: usize, tasks: usize) -> (usize, usize) {
    let m_cap = m.max(1);
    let n_cap = n.max(1);
    let mut mo = 1usize;
    let mut no = 1usize;
    let strands = |mo: usize, no: usize| m.div_ceil(mo) + n.div_ceil(no);
    while (mo * no < tasks || strands(mo, no) > 1 << 16) && (mo < m_cap || no < n_cap) {
        // double along the dimension with the longer blocks
        let prefer_m = m.div_ceil(mo) >= n.div_ceil(no);
        if (prefer_m && mo < m_cap) || no >= n_cap {
            mo = (mo * 2).min(m_cap);
        } else {
            no = (no * 2).min(n_cap);
        }
    }
    (mo, no)
}

/// Listing 7 (`semi_hybrid_iterative`): flattened outer recursion with an
/// explicit sub-grid array, 16-bit strand indices inside every sub-comb,
/// and a longest-side-first balanced tree reduction.
///
/// `tasks` controls the number of sub-grids (usually the rayon pool
/// size); all sub-combs and all compositions within one reduction step
/// run in parallel on the current pool.
pub fn grid_hybrid_combing<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    tasks: usize,
) -> SemiLocalKernel {
    if let Some(k) = base_kernel(a, b) {
        return k;
    }
    let (m_outer, n_outer) = optimal_split(a.len(), b.len(), tasks);
    let a_blocks = partition(a.len(), m_outer);
    let b_blocks = partition(b.len(), n_outer);

    // Phase 1: comb every sub-grid independently (parallel taskloop).
    let mut grid: Vec<SemiLocalKernel> = (0..m_outer * n_outer)
        .into_par_iter()
        .map(|idx| {
            let (i, j) = (idx / n_outer, idx % n_outer);
            let ab = &a[a_blocks[i].clone()];
            let bb = &b[b_blocks[j].clone()];
            antidiag_combing_u16(ab, bb)
        })
        .collect();

    // Phase 2: tree reduction, always merging along the longest sub-grid
    // side (the paper's balance heuristic).
    let mut rows = m_outer;
    let mut cols = n_outer;
    let mut m_inner = a.len().div_ceil(m_outer);
    let mut n_inner = b.len().div_ceil(n_outer);
    while rows > 1 || cols > 1 {
        let row_reduction = if rows > 1 && cols > 1 {
            m_inner >= n_inner // merge along the longer axis
        } else {
            cols > 1
        };
        if row_reduction {
            // compose horizontally adjacent sub-grids (common vertical side)
            let new_cols = cols.div_ceil(2);
            grid = (0..rows * new_cols)
                .into_par_iter()
                .map(|idx| {
                    let (i, j) = (idx / new_cols, idx % new_cols);
                    let left = &grid[i * cols + 2 * j];
                    if 2 * j + 1 < cols {
                        let right = &grid[i * cols + 2 * j + 1];
                        let mut mul = CombinedMultiplier::new(left.m() + left.n() + right.n());
                        compose_horizontal_split(left, right, &mut mul)
                    } else {
                        left.clone()
                    }
                })
                .collect();
            cols = new_cols;
            n_inner *= 2;
        } else {
            let new_rows = rows.div_ceil(2);
            grid = (0..new_rows * cols)
                .into_par_iter()
                .map(|idx| {
                    let (i, j) = (idx / cols, idx % cols);
                    let top = &grid[(2 * i) * cols + j];
                    if 2 * i + 1 < rows {
                        let bottom = &grid[(2 * i + 1) * cols + j];
                        let mut mul = CombinedMultiplier::new(top.m() + bottom.m() + top.n());
                        compose_vertical_split(top, bottom, &mut mul)
                    } else {
                        top.clone()
                    }
                })
                .collect();
            rows = new_rows;
            m_inner *= 2;
        }
    }
    // PANIC: the pairwise reduction terminates with exactly one kernel in the grid.
    let result = grid.into_iter().next().expect("reduction leaves one kernel");
    debug_assert_eq!(result.m(), a.len());
    debug_assert_eq!(result.n(), b.len());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative_combing;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x4B1D)
    }

    fn random_string(rng: &mut impl rand::Rng, len: usize, sigma: u8) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn partition_covers_exactly() {
        for (len, parts) in [(10usize, 3usize), (7, 7), (5, 8), (0, 3), (100, 1)] {
            let ranges = partition(len, parts);
            assert_eq!(ranges.len(), parts.max(1));
            let mut pos = 0;
            for r in &ranges {
                assert_eq!(r.start, pos);
                pos = r.end;
            }
            assert_eq!(pos, len);
        }
    }

    #[test]
    fn optimal_split_respects_u16_budget() {
        let (mo, no) = optimal_split(100_000, 100_000, 4);
        assert!(100_000usize.div_ceil(mo) + 100_000usize.div_ceil(no) <= 1 << 16);
        assert!(mo * no >= 4);
    }

    #[test]
    fn hybrid_size_threshold_matches_iterative() {
        let mut rng = rng();
        for threshold in [0usize, 4, 16, 64, 1024] {
            let a = random_string(&mut rng, 60, 3);
            let b = random_string(&mut rng, 45, 3);
            assert_eq!(
                hybrid_combing(&a, &b, threshold),
                iterative_combing(&a, &b),
                "threshold={threshold}"
            );
        }
    }

    #[test]
    fn hybrid_depth_matches_iterative() {
        let mut rng = rng();
        for depth in 0..=5usize {
            let m = rng.random_range(1..80);
            let n = rng.random_range(1..80);
            let a = random_string(&mut rng, m, 4);
            let b = random_string(&mut rng, n, 4);
            assert_eq!(
                hybrid_combing_depth(&a, &b, depth),
                iterative_combing(&a, &b),
                "depth={depth} m={m} n={n}"
            );
            assert_eq!(
                par_hybrid_combing_depth(&a, &b, depth, 2),
                iterative_combing(&a, &b),
                "par depth={depth}"
            );
        }
    }

    #[test]
    fn grid_hybrid_matches_iterative() {
        let mut rng = rng();
        for tasks in [1usize, 2, 4, 7, 16] {
            let m = rng.random_range(1..100);
            let n = rng.random_range(1..100);
            let a = random_string(&mut rng, m, 3);
            let b = random_string(&mut rng, n, 3);
            assert_eq!(
                grid_hybrid_combing(&a, &b, tasks),
                iterative_combing(&a, &b),
                "tasks={tasks} m={m} n={n}"
            );
        }
    }

    #[test]
    fn grid_hybrid_handles_degenerate_shapes() {
        assert_eq!(
            grid_hybrid_combing(b"a", b"aaaaaaaaaa", 8),
            iterative_combing(b"a", b"aaaaaaaaaa")
        );
        assert_eq!(
            grid_hybrid_combing(b"abcabcabc", b"c", 8),
            iterative_combing(b"abcabcabc", b"c")
        );
    }
}
