//! Anti-diagonal iterative combing (Listing 4 of the paper).
//!
//! Cells on one anti-diagonal are independent (processing cell `(i,j)`
//! depends only on `(i,j−1)` and `(i−1,j)`), so the grid is swept in
//! anti-diagonals. For a diagonal `d` the active cells form contiguous
//! ranges of both strand arrays (`a` is stored reversed so its accesses
//! are consecutive too), which makes the inner loop a perfect
//! data-parallel kernel:
//!
//! * the **branching** inner loop (`semi_antidiag`) swaps strands behind a
//!   condition — fewer memory writes, but branch mispredictions and no
//!   vectorization;
//! * the **branchless** inner loop (`semi_antidiag_SIMD`) replaces the
//!   branch with mask arithmetic `h' = (h & (p−1)) | ((−p) & v)`, which
//!   LLVM auto-vectorizes (the paper's hand-written AVX2 plays the same
//!   role);
//! * the **16-bit** variant packs strand indices into `u16` when
//!   `m + n ≤ 2¹⁶`, doubling the SIMD lane count (§4.1, last paragraph).
//!
//! Thread-parallel versions split each diagonal across the current rayon
//! pool, with a synchronization barrier per diagonal — exactly the cost
//! model discussed in §4.1 of the paper.

use rayon::prelude::*;

use crate::iterative::build_kernel;
use crate::kernel::SemiLocalKernel;

/// Strand-index storage: `u32` for general inputs, `u16` when
/// `m + n ≤ 2¹⁶` (the paper's SIMD-width optimization).
pub trait StrandIx: Copy + Ord + Send + Sync + 'static {
    /// Lossless for all values used by the combing (asserted by callers).
    fn from_usize(x: usize) -> Self;
    /// Back to a plain index.
    fn to_u32(self) -> u32;
    /// Branchless conditional swap: returns `(h', v')` equal to `(v, h)`
    /// if `p`, `(h, v)` otherwise, compiled without branches.
    fn cswap(p: bool, h: Self, v: Self) -> (Self, Self);
}

macro_rules! impl_strand_ix {
    ($t:ty) => {
        impl StrandIx for $t {
            #[inline(always)]
            fn from_usize(x: usize) -> Self {
                debug_assert!(x <= <$t>::MAX as usize);
                x as $t
            }
            #[inline(always)]
            fn to_u32(self) -> u32 {
                self as u32
            }
            #[inline(always)]
            fn cswap(p: bool, h: Self, v: Self) -> (Self, Self) {
                let p = p as $t;
                // p ∈ {0,1}: p − 1 is all-ones iff p = 0, −p all-ones iff p = 1
                let keep = p.wrapping_sub(1);
                let take = p.wrapping_neg();
                ((h & keep) | (take & v), (v & keep) | (take & h))
            }
        }
    };
}

impl_strand_ix!(u16);
impl_strand_ix!(u32);

/// Geometry of one anti-diagonal `d ∈ [0, m+n−1)`: the slice offsets of
/// the active cells. For cell index `k` within the diagonal, the
/// participating strands are `h_strands[h0 + k]` and `v_strands[v0 + k]`,
/// and the characters `a_rev[h0 + k]` vs `b[v0 + k]`.
#[inline]
pub(crate) fn diag_ranges(m: usize, n: usize, d: usize) -> (usize, usize, usize) {
    let j_lo = d.saturating_sub(m - 1);
    let j_hi = (d + 1).min(n);
    let h0 = if d < m { m - 1 - d } else { 0 };
    (h0, j_lo, j_hi - j_lo)
}

/// Shared driver: sweep all anti-diagonals, processing each with `inloop`.
fn sweep<T, S, F>(a: &[T], b: &[T], inloop: F) -> SemiLocalKernel
where
    T: Eq + Clone + Sync,
    S: StrandIx,
    F: Fn(&[T], &[T], &mut [S], &mut [S]),
{
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        // PANIC: base_kernel never fails when one side is empty.
        return crate::recursive::base_kernel(a, b).expect("empty grid has a trivial kernel");
    }
    let a_rev: Vec<T> = a.iter().rev().cloned().collect();
    let mut h_strands: Vec<S> = (0..m).map(S::from_usize).collect();
    let mut v_strands: Vec<S> = (m..m + n).map(S::from_usize).collect();
    for d in 0..(m + n - 1) {
        let (h0, v0, len) = diag_ranges(m, n, d);
        inloop(
            &a_rev[h0..h0 + len],
            &b[v0..v0 + len],
            &mut h_strands[h0..h0 + len],
            &mut v_strands[v0..v0 + len],
        );
    }
    let h32: Vec<u32> = h_strands.iter().map(|s| s.to_u32()).collect();
    let v32: Vec<u32> = v_strands.iter().map(|s| s.to_u32()).collect();
    SemiLocalKernel::new(build_kernel(&h32, &v32), m, n)
}

#[inline(always)]
fn cell_branching<T: Eq, S: StrandIx>(ac: &T, bc: &T, h: &mut S, v: &mut S) {
    if ac == bc || *h > *v {
        std::mem::swap(h, v);
    }
}

#[inline(always)]
fn cell_branchless<T: Eq, S: StrandIx>(ac: &T, bc: &T, h: &mut S, v: &mut S) {
    let p = (ac == bc) | (*h > *v);
    let (nh, nv) = S::cswap(p, *h, *v);
    *h = nh;
    *v = nv;
}

/// `semi_antidiag`: sequential anti-diagonal combing with the branching
/// inner loop.
pub fn antidiag_combing<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
        for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
            cell_branching(ac, bc, h, v);
        }
    })
}

/// `semi_antidiag_SIMD`: sequential anti-diagonal combing with the
/// branchless (auto-vectorizable) inner loop, 32-bit strand indices.
pub fn antidiag_combing_branchless<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
        for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
            cell_branchless(ac, bc, h, v);
        }
    })
}

/// Branchless anti-diagonal combing with 16-bit strand indices — double
/// the SIMD lanes of [`antidiag_combing_branchless`].
///
/// # Panics
///
/// Panics if `m + n > 2¹⁶` (the index space of `u16`).
pub fn antidiag_combing_u16<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    assert!(
        a.len() + b.len() <= 1 << 16,
        "u16 strand indices require m + n ≤ 65536 (got {})",
        a.len() + b.len()
    );
    sweep::<_, u16, _>(a, b, |ar, bs, hs, vs| {
        for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
            cell_branchless(ac, bc, h, v);
        }
    })
}

/// Cells per parallel task; below this a diagonal chunk is not worth
/// handing to another worker. Overridable at process start through the
/// `SLCS_PAR_GRAIN` environment variable (see [`par_grain`]).
const PAR_GRAIN: usize = 8 * 1024;

/// The effective parallel grain: `SLCS_PAR_GRAIN` from the environment
/// (first read wins, cached for the process) or the built-in default of
/// 8192 cells. Zero or unparsable values fall back to the default.
pub fn par_grain() -> usize {
    static GRAIN: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *GRAIN.get_or_init(|| {
        std::env::var("SLCS_PAR_GRAIN")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&g| g > 0)
            .unwrap_or(PAR_GRAIN)
    })
}

/// How a thread-parallel sweep schedules its anti-diagonal work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheduling {
    /// One `std::thread::scope` spawn/join cycle per anti-diagonal — the
    /// pre-pool executor's behavior, kept as the benchmark baseline.
    SpawnPerDiag,
    /// One persistent-pool fork/join per anti-diagonal (a parallel
    /// iterator drive per diagonal).
    PoolPerDiag,
    /// One worker team pinned for the whole sweep, separating diagonals
    /// with a barrier — no fork/join on the hot path at all.
    Team,
    /// One worker team for the whole sweep with **no barrier at all**:
    /// the leader sequences diagonals and publishes chunks through a
    /// Chase–Lev deque; members are free-running steal loops, and short
    /// diagonals are processed by the leader alone with zero
    /// synchronization (see `sweep_wavefront_ws`).
    WorkSteal,
    /// Pick a mode from the measured tuning profile (`slcs tune`,
    /// [`crate::tuning`]) for this grid size and thread budget.
    Auto,
}

impl Scheduling {
    /// All concrete (non-[`Auto`](Scheduling::Auto)) modes, benchmark
    /// sweep order.
    pub const FIXED: [Scheduling; 4] = [
        Scheduling::SpawnPerDiag,
        Scheduling::PoolPerDiag,
        Scheduling::Team,
        Scheduling::WorkSteal,
    ];

    /// Stable wire token, used in BENCH_pool.json rows, tuning profiles
    /// and METRICS labels.
    pub fn token(self) -> &'static str {
        match self {
            Scheduling::SpawnPerDiag => "spawn_per_diag",
            Scheduling::PoolPerDiag => "pool_per_diag",
            Scheduling::Team => "team",
            Scheduling::WorkSteal => "work_steal",
            Scheduling::Auto => "auto",
        }
    }

    /// Inverse of [`token`](Scheduling::token).
    pub fn from_token(token: &str) -> Option<Scheduling> {
        match token {
            "spawn_per_diag" => Some(Scheduling::SpawnPerDiag),
            "pool_per_diag" => Some(Scheduling::PoolPerDiag),
            "team" => Some(Scheduling::Team),
            "work_steal" => Some(Scheduling::WorkSteal),
            "auto" => Some(Scheduling::Auto),
            _ => None,
        }
    }
}

/// Shared write access to the strand arrays for team members. Each
/// member only touches the disjoint index range it is assigned for the
/// current diagonal, and the team barrier orders diagonals, so the
/// aliasing is benign.
struct SharedStrands<S> {
    ptr: *mut S,
}

// SAFETY: see the struct docs — members touch disjoint ranges and the team
// barrier orders diagonals.
unsafe impl<S: Send> Sync for SharedStrands<S> {}

impl<S> SharedStrands<S> {
    /// # Safety
    ///
    /// `[lo, hi)` must be in bounds and disjoint from every range any
    /// other thread accesses between two barriers.
    #[allow(clippy::mut_from_ref)] // &self is a shared raw-ptr capability; disjointness is the caller's contract above
    unsafe fn range_mut(&self, lo: usize, hi: usize) -> &mut [S] {
        // SAFETY: in-bounds and disjoint by the function's contract.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }
}

/// Team-scheduled sweep: one team for all `m + n − 1` diagonals, a
/// barrier per diagonal. Falls back to the plain sequential sweep when
/// the grid cannot keep a second worker busy (`min(m, n) < 2·grain`
/// or a 1-thread budget), so callers can use it unconditionally.
///
/// `TRACED = false` compiles the span sites out entirely (not even the
/// enabled-check load remains) — the zero-instrumentation baseline that
/// `slcs bench-obs` measures disabled-tracing overhead against.
fn sweep_wavefront<T, S, C, const TRACED: bool>(
    a: &[T],
    b: &[T],
    grain: usize,
    cell: C,
) -> SemiLocalKernel
where
    T: Eq + Clone + Sync,
    S: StrandIx,
    C: Fn(&T, &T, &mut S, &mut S) + Sync,
{
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        // PANIC: base_kernel never fails when one side is empty.
        return crate::recursive::base_kernel(a, b).expect("empty grid has a trivial kernel");
    }
    let grain = grain.max(1);
    let team = rayon::current_num_threads().min(m.min(n) / grain).max(1);
    if team <= 1 {
        return sweep::<_, S, _>(a, b, |ar, bs, hs, vs| {
            for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
                cell(ac, bc, h, v);
            }
        });
    }
    let a_rev: Vec<T> = a.iter().rev().cloned().collect();
    let mut h_strands: Vec<S> = (0..m).map(S::from_usize).collect();
    let mut v_strands: Vec<S> = (m..m + n).map(S::from_usize).collect();
    {
        let h = SharedStrands { ptr: h_strands.as_mut_ptr() };
        let v = SharedStrands { ptr: v_strands.as_mut_ptr() };
        let a_rev = &a_rev;
        let _sweep_span = if TRACED {
            slcs_trace::span!("wavefront.sweep", "diags" => m + n - 1, "team" => team)
        } else {
            None
        };
        // Whole-sweep allocation attribution (strand vectors are already
        // allocated above; a clean sweep allocates nothing per diagonal).
        let _sweep_mem = slcs_alloc::alloc_scope!("wavefront.sweep.mem");
        rayon::team_run(team, |view| {
            for d in 0..(m + n - 1) {
                let (h0, v0, len) = diag_ranges(m, n, d);
                // Short diagonals activate fewer members; inactive ones
                // go straight to the barrier.
                let active = view.size.min(len.div_ceil(grain)).max(1);
                if view.id < active {
                    let chunk = len.div_ceil(active);
                    let lo = (view.id * chunk).min(len);
                    let hi = (lo + chunk).min(len);
                    // One relaxed load per diagonal chunk when tracing
                    // is off; a Begin/End pair per chunk when on, which
                    // is what makes load imbalance visible per member.
                    let _diag_span = if TRACED {
                        slcs_trace::span!("wavefront.diag", "d" => d, "len" => hi - lo)
                    } else {
                        None
                    };
                    // SAFETY: members cover disjoint [lo, hi) slices of
                    // this diagonal; the barrier below sequences access
                    // across diagonals.
                    let hs = unsafe { h.range_mut(h0 + lo, h0 + hi) };
                    // SAFETY: same disjoint-range argument as for `hs` above.
                    let vs = unsafe { v.range_mut(v0 + lo, v0 + hi) };
                    let ar = &a_rev[h0 + lo..h0 + hi];
                    let bs = &b[v0 + lo..v0 + hi];
                    for ((ac, bc), (hr, vr)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
                        cell(ac, bc, hr, vr);
                    }
                }
                if !view.barrier() {
                    return;
                }
            }
        });
    }
    let h32: Vec<u32> = h_strands.iter().map(|s| s.to_u32()).collect();
    let v32: Vec<u32> = v_strands.iter().map(|s| s.to_u32()).collect();
    SemiLocalKernel::new(build_kernel(&h32, &v32), m, n)
}

/// Work-stealing wavefront: one team for all `m + n − 1` diagonals and
/// **no barrier anywhere**. The leader (member 0) sequences diagonals;
/// for each one it publishes the tail chunks through a Chase–Lev
/// [`rayon::Deque`] (it is the deque's owner: members only steal),
/// combs the head chunk itself, drains its own deque LIFO, and then
/// waits on a `remaining` counter that members decrement as their
/// stolen chunks finish. Members are free-running steal loops with an
/// escalating spin → yield → sleep backoff, so an idle member costs
/// (almost) nothing — which is what makes this mode degrade gracefully
/// to sequential speed on a 1-CPU box.
///
/// The decisive difference from [`sweep_wavefront`]: a diagonal too
/// short to split (`active ≤ 1`) is combed by the leader **with zero
/// synchronization** — no counter, no deque traffic, no member wakeup.
/// The first and last ~`2·grain·team` diagonals of every grid fall in
/// this regime, exactly where the barrier mode thrashes.
///
/// # Correctness of the handshake
///
/// Chunk geometry is a pure function of `(d, k, view.size, grain)`, so
/// an entry `(d, k)` fully identifies a disjoint strand range. Within a
/// diagonal, the deque delivers each entry exactly once (owner pop /
/// CAS-validated steal). Across diagonals, the happens-before chain is:
/// member's strand writes → its `remaining.fetch_sub` (SeqCst RMW) →
/// leader observing `remaining == 0` (the RMW chain forms a release
/// sequence) → leader's next-diagonal deque pushes → the stealing
/// member's reads. The leader's own writes reach members through the
/// deque's SeqCst `bottom` publication. Panic exits take the same
/// edges: the leader polls [`rayon::TeamView::poisoned`] while waiting,
/// members poll it and a `done` flag while stealing, and `team_run`
/// joins every member before this frame (and the strand vectors) drops.
fn sweep_wavefront_ws<T, S, C, const TRACED: bool>(
    a: &[T],
    b: &[T],
    grain: usize,
    cell: C,
) -> SemiLocalKernel
where
    T: Eq + Clone + Sync,
    S: StrandIx,
    C: Fn(&T, &T, &mut S, &mut S) + Sync,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        // PANIC: base_kernel never fails when one side is empty.
        return crate::recursive::base_kernel(a, b).expect("empty grid has a trivial kernel");
    }
    let grain = grain.max(1);
    let team = rayon::current_num_threads().min(m.min(n) / grain).max(1);
    if team <= 1 {
        return sweep::<_, S, _>(a, b, |ar, bs, hs, vs| {
            for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
                cell(ac, bc, h, v);
            }
        });
    }
    let a_rev: Vec<T> = a.iter().rev().cloned().collect();
    let mut h_strands: Vec<S> = (0..m).map(S::from_usize).collect();
    let mut v_strands: Vec<S> = (m..m + n).map(S::from_usize).collect();
    {
        let h = SharedStrands { ptr: h_strands.as_mut_ptr() };
        let v = SharedStrands { ptr: v_strands.as_mut_ptr() };
        let a_rev = &a_rev;
        // Owned by the leader; members only steal. At most `team − 1`
        // entries are ever live, so the ring cannot overflow (the push
        // fallback below is defensive).
        let work = rayon::Deque::new(team);
        // Unfinished chunks of the diagonal in flight.
        let remaining = AtomicUsize::new(0);
        // Leader → members: the sweep is over, stop stealing.
        let done = AtomicBool::new(false);
        let _sweep_span = if TRACED {
            slcs_trace::span!("wavefront.sweep", "diags" => m + n - 1, "team" => team)
        } else {
            None
        };
        let _sweep_mem = slcs_alloc::alloc_scope!("wavefront.sweep.mem");
        rayon::team_run(team, |view| {
            let size = view.size;
            // Combs chunk `k` of diagonal `d`; geometry recomputed from
            // scratch so an entry is self-describing.
            let comb_chunk = |d: usize, k: usize| {
                let (h0, v0, len) = diag_ranges(m, n, d);
                let active = size.min(len.div_ceil(grain)).max(1);
                let chunk = len.div_ceil(active);
                let lo = (k * chunk).min(len);
                let hi = (lo + chunk).min(len);
                if lo >= hi {
                    return;
                }
                let _chunk_span = if TRACED {
                    slcs_trace::span!("wavefront.chunk", "d" => d, "len" => hi - lo)
                } else {
                    None
                };
                // SAFETY: chunk `k` of diagonal `d` is a disjoint range,
                // delivered exactly once by the deque; the remaining-
                // counter handshake sequences diagonals (see fn docs).
                let hs = unsafe { h.range_mut(h0 + lo, h0 + hi) };
                // SAFETY: same disjoint-range argument as for `hs`.
                let vs = unsafe { v.range_mut(v0 + lo, v0 + hi) };
                let ar = &a_rev[h0 + lo..h0 + hi];
                let bs = &b[v0 + lo..v0 + hi];
                for ((ac, bc), (hr, vr)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
                    cell(ac, bc, hr, vr);
                }
            };
            if view.id != 0 {
                // Member: free-running steal loop. Escalating backoff
                // keeps an idle member effectively free (it sleeps) on
                // machines where the leader does all the work.
                let mut idle = 0u32;
                loop {
                    // ORDERING: SeqCst — the done flag and the remaining
                    // counter form one handshake with the deque's SeqCst
                    // protocol; a single total order keeps the
                    // counter/steal/shutdown reasoning linear.
                    if done.load(Ordering::SeqCst) || view.poisoned() {
                        return;
                    }
                    match work.steal() {
                        Some((d, k)) => {
                            comb_chunk(d, k);
                            // ORDERING: SeqCst — releases the chunk's
                            // strand writes to the leader's counter wait.
                            remaining.fetch_sub(1, Ordering::SeqCst);
                            idle = 0;
                        }
                        None => {
                            idle += 1;
                            if idle < 64 {
                                std::hint::spin_loop();
                            } else if idle < 80 {
                                std::thread::yield_now();
                            } else {
                                let us = (50 * u64::from(idle - 79)).min(500);
                                std::thread::sleep(std::time::Duration::from_micros(us));
                            }
                        }
                    }
                }
            }
            // Leader: sequence the diagonals.
            for d in 0..(m + n - 1) {
                let (_, _, len) = diag_ranges(m, n, d);
                let active = size.min(len.div_ceil(grain)).max(1);
                if active <= 1 {
                    // Too short to split: comb it solo, zero sync.
                    comb_chunk(d, 0);
                    continue;
                }
                // Publish the tail chunks, keep the head for ourselves.
                // The counter is stored before the pushes (and reaches
                // members through the push's SeqCst publication), so a
                // decrement can never observe a stale zero.
                // ORDERING: SeqCst — see the member loop: one total
                // order across the counter, the deque and the done flag.
                remaining.store(active, Ordering::SeqCst);
                for k in 1..active {
                    if work.push((d, k)).is_err() {
                        // Ring full (cannot happen at ≤ team−1 entries;
                        // defensive): comb it inline instead.
                        comb_chunk(d, k);
                        // ORDERING: SeqCst — same handshake as above.
                        remaining.fetch_sub(1, Ordering::SeqCst);
                    }
                }
                comb_chunk(d, 0);
                // ORDERING: SeqCst — same handshake as above.
                remaining.fetch_sub(1, Ordering::SeqCst);
                // Drain what nobody stole (LIFO; same diagonal only).
                while let Some((d2, k2)) = work.pop() {
                    comb_chunk(d2, k2);
                    // ORDERING: SeqCst — same handshake as above.
                    remaining.fetch_sub(1, Ordering::SeqCst);
                }
                // Wait for in-flight stolen chunks.
                let mut idle = 0u32;
                // ORDERING: SeqCst — acquires every decrementer's strand
                // writes before the next diagonal is published.
                while remaining.load(Ordering::SeqCst) != 0 {
                    if view.poisoned() {
                        // ORDERING: SeqCst — same handshake as above.
                        done.store(true, Ordering::SeqCst);
                        return;
                    }
                    idle += 1;
                    if idle < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
            // ORDERING: SeqCst — shutdown publication; members observe
            // it in the same total order as their last steal attempt.
            done.store(true, Ordering::SeqCst);
        });
    }
    let h32: Vec<u32> = h_strands.iter().map(|s| s.to_u32()).collect();
    let v32: Vec<u32> = v_strands.iter().map(|s| s.to_u32()).collect();
    SemiLocalKernel::new(build_kernel(&h32, &v32), m, n)
}

/// Pre-pool baseline: chunk the diagonal and pay a full OS-thread
/// spawn/join cycle for every chunk beyond the first — what every
/// parallel drive cost before the persistent pool existed.
fn spawn_per_diag_inloop<T: Eq + Sync, S: StrandIx>(
    grain: usize,
    ar: &[T],
    bs: &[T],
    hs: &mut [S],
    vs: &mut [S],
    cell: impl Fn(&T, &T, &mut S, &mut S) + Copy + Send + Sync,
) {
    let len = hs.len();
    let pieces = rayon::current_num_threads().min(len / grain.max(1)).max(1);
    let chunk = len.div_ceil(pieces);
    if pieces <= 1 {
        for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
            cell(ac, bc, h, v);
        }
        return;
    }
    std::thread::scope(|s| {
        for (((hc, vc), ac), bc) in hs
            .chunks_mut(chunk)
            .zip(vs.chunks_mut(chunk))
            .zip(ar.chunks(chunk))
            .zip(bs.chunks(chunk))
        {
            s.spawn(move || {
                for ((a1, b1), (h, v)) in ac.iter().zip(bc).zip(hc.iter_mut().zip(vc)) {
                    cell(a1, b1, h, v);
                }
            });
        }
    });
}

/// Branchless parallel combing under an explicit [`Scheduling`] mode and
/// grain — the knob pair behind `bench-baseline`'s before/after
/// comparison and the grain ablation of §4.1.
pub fn par_antidiag_combing_branchless_sched<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    sched: Scheduling,
    grain: usize,
) -> SemiLocalKernel {
    let grain = grain.max(1);
    match sched {
        Scheduling::SpawnPerDiag => sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
            spawn_per_diag_inloop(grain, ar, bs, hs, vs, cell_branchless::<T, u32>);
        }),
        Scheduling::PoolPerDiag => sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
            hs.par_iter_mut()
                .with_min_len(grain)
                .zip(vs.par_iter_mut())
                .zip(ar.par_iter().zip(bs.par_iter()))
                .for_each(|((h, v), (ac, bc))| cell_branchless(ac, bc, h, v));
        }),
        Scheduling::Team => {
            sweep_wavefront::<_, u32, _, true>(a, b, grain, cell_branchless::<T, u32>)
        }
        Scheduling::WorkSteal => {
            sweep_wavefront_ws::<_, u32, _, true>(a, b, grain, cell_branchless::<T, u32>)
        }
        Scheduling::Auto => {
            let (mode, grain) =
                crate::tuning::auto_plan(a.len(), b.len(), rayon::current_num_threads());
            par_antidiag_combing_branchless_sched(a, b, mode, grain)
        }
    }
}

/// [`par_antidiag_combing_branchless`] with an explicit grain size
/// (minimum cells per member per diagonal) — the ablation knob for the
/// per-diagonal synchronization overhead discussed in §4.1.
pub fn par_antidiag_combing_branchless_grain<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    grain: usize,
) -> SemiLocalKernel {
    sweep_wavefront::<_, u32, _, true>(a, b, grain, cell_branchless::<T, u32>)
}

/// Trace-free twin of [`par_antidiag_combing_branchless_grain`]: the
/// span sites are compiled out entirely, not merely disabled. This is
/// the zero-instrumentation baseline `slcs bench-obs` compares against
/// to prove the disabled-tracing path costs ≤ the advertised bound —
/// not part of the supported API surface.
#[doc(hidden)]
pub fn par_antidiag_combing_branchless_untraced<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    grain: usize,
) -> SemiLocalKernel {
    sweep_wavefront::<_, u32, _, false>(a, b, grain, cell_branchless::<T, u32>)
}

/// Thread-parallel `semi_antidiag` (branching inner loop): one worker
/// team for the whole sweep, a barrier per anti-diagonal (Listing 4).
pub fn par_antidiag_combing<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep_wavefront::<_, u32, _, true>(a, b, par_grain(), cell_branching::<T, u32>)
}

/// Thread-parallel branchless anti-diagonal combing
/// (`semi_antidiag_SIMD`'s parallel form from Figures 7–8).
pub fn par_antidiag_combing_branchless<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep_wavefront::<_, u32, _, true>(a, b, par_grain(), cell_branchless::<T, u32>)
}

/// Thread-parallel branchless combing with 16-bit strand indices.
///
/// # Panics
///
/// Panics if `m + n > 2¹⁶`.
pub fn par_antidiag_combing_u16<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    assert!(
        a.len() + b.len() <= 1 << 16,
        "u16 strand indices require m + n ≤ 65536 (got {})",
        a.len() + b.len()
    );
    sweep_wavefront::<_, u16, _, true>(a, b, par_grain(), cell_branchless::<T, u16>)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative_combing;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xD1A6)
    }

    fn random_string(rng: &mut impl rand::Rng, len: usize, sigma: u8) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn diag_ranges_cover_every_cell_once() {
        for (m, n) in [(1usize, 1usize), (3, 5), (5, 3), (4, 4), (1, 7), (7, 1)] {
            let mut seen = vec![false; m * n];
            for d in 0..(m + n - 1) {
                let (h0, v0, len) = diag_ranges(m, n, d);
                for k in 0..len {
                    // cell (i, j): h index h0+k = m−1−i ⇒ i = m−1−(h0+k); j = v0+k
                    let i = m - 1 - (h0 + k);
                    let j = v0 + k;
                    assert!(i < m && j < n, "m={m} n={n} d={d} k={k}");
                    assert_eq!(i + j, d);
                    assert!(!seen[i * n + j], "cell revisited");
                    seen[i * n + j] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "m={m} n={n}: cells missed");
        }
    }

    #[test]
    fn all_variants_match_iterative_combing() {
        let mut rng = rng();
        for _ in 0..20 {
            let m = rng.random_range(1..40);
            let n = rng.random_range(1..40);
            let a = random_string(&mut rng, m, 3);
            let b = random_string(&mut rng, n, 3);
            let want = iterative_combing(&a, &b);
            assert_eq!(antidiag_combing(&a, &b), want, "branching a={a:?} b={b:?}");
            assert_eq!(antidiag_combing_branchless(&a, &b), want, "branchless a={a:?} b={b:?}");
            assert_eq!(antidiag_combing_u16(&a, &b), want, "u16 a={a:?} b={b:?}");
            assert_eq!(par_antidiag_combing(&a, &b), want, "par a={a:?} b={b:?}");
            assert_eq!(
                par_antidiag_combing_branchless(&a, &b),
                want,
                "par branchless a={a:?} b={b:?}"
            );
            assert_eq!(par_antidiag_combing_u16(&a, &b), want, "par u16 a={a:?} b={b:?}");
            for sched in Scheduling::FIXED.into_iter().chain([Scheduling::Auto]) {
                assert_eq!(
                    par_antidiag_combing_branchless_sched(&a, &b, sched, 4),
                    want,
                    "sched={sched:?} a={a:?} b={b:?}"
                );
            }
        }
    }

    #[test]
    fn scheduling_tokens_round_trip() {
        for sched in Scheduling::FIXED.into_iter().chain([Scheduling::Auto]) {
            assert_eq!(Scheduling::from_token(sched.token()), Some(sched));
        }
        assert_eq!(Scheduling::from_token("bogus"), None);
    }

    #[test]
    fn empty_inputs() {
        let want = iterative_combing(b"abc", b"");
        assert_eq!(antidiag_combing(b"abc", b""), want);
        assert_eq!(antidiag_combing_branchless(b"", b"xy"), iterative_combing(b"", b"xy"));
    }

    #[test]
    #[should_panic(expected = "65536")]
    fn u16_variant_rejects_oversized_inputs() {
        let a = vec![0u8; 40_000];
        let b = vec![1u8; 40_000];
        antidiag_combing_u16(&a, &b);
    }

    #[test]
    fn cswap_is_branch_free_semantics() {
        assert_eq!(u32::cswap(true, 7, 9), (9, 7));
        assert_eq!(u32::cswap(false, 7, 9), (7, 9));
        assert_eq!(u16::cswap(true, 0, u16::MAX - 1), (u16::MAX - 1, 0));
    }
}
