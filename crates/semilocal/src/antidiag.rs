//! Anti-diagonal iterative combing (Listing 4 of the paper).
//!
//! Cells on one anti-diagonal are independent (processing cell `(i,j)`
//! depends only on `(i,j−1)` and `(i−1,j)`), so the grid is swept in
//! anti-diagonals. For a diagonal `d` the active cells form contiguous
//! ranges of both strand arrays (`a` is stored reversed so its accesses
//! are consecutive too), which makes the inner loop a perfect
//! data-parallel kernel:
//!
//! * the **branching** inner loop (`semi_antidiag`) swaps strands behind a
//!   condition — fewer memory writes, but branch mispredictions and no
//!   vectorization;
//! * the **branchless** inner loop (`semi_antidiag_SIMD`) replaces the
//!   branch with mask arithmetic `h' = (h & (p−1)) | ((−p) & v)`, which
//!   LLVM auto-vectorizes (the paper's hand-written AVX2 plays the same
//!   role);
//! * the **16-bit** variant packs strand indices into `u16` when
//!   `m + n ≤ 2¹⁶`, doubling the SIMD lane count (§4.1, last paragraph).
//!
//! Thread-parallel versions split each diagonal across the current rayon
//! pool, with a synchronization barrier per diagonal — exactly the cost
//! model discussed in §4.1 of the paper.

use rayon::prelude::*;

use crate::iterative::build_kernel;
use crate::kernel::SemiLocalKernel;

/// Strand-index storage: `u32` for general inputs, `u16` when
/// `m + n ≤ 2¹⁶` (the paper's SIMD-width optimization).
pub trait StrandIx: Copy + Ord + Send + Sync + 'static {
    /// Lossless for all values used by the combing (asserted by callers).
    fn from_usize(x: usize) -> Self;
    /// Back to a plain index.
    fn to_u32(self) -> u32;
    /// Branchless conditional swap: returns `(h', v')` equal to `(v, h)`
    /// if `p`, `(h, v)` otherwise, compiled without branches.
    fn cswap(p: bool, h: Self, v: Self) -> (Self, Self);
}

macro_rules! impl_strand_ix {
    ($t:ty) => {
        impl StrandIx for $t {
            #[inline(always)]
            fn from_usize(x: usize) -> Self {
                debug_assert!(x <= <$t>::MAX as usize);
                x as $t
            }
            #[inline(always)]
            fn to_u32(self) -> u32 {
                self as u32
            }
            #[inline(always)]
            fn cswap(p: bool, h: Self, v: Self) -> (Self, Self) {
                let p = p as $t;
                // p ∈ {0,1}: p − 1 is all-ones iff p = 0, −p all-ones iff p = 1
                let keep = p.wrapping_sub(1);
                let take = p.wrapping_neg();
                ((h & keep) | (take & v), (v & keep) | (take & h))
            }
        }
    };
}

impl_strand_ix!(u16);
impl_strand_ix!(u32);

/// Geometry of one anti-diagonal `d ∈ [0, m+n−1)`: the slice offsets of
/// the active cells. For cell index `k` within the diagonal, the
/// participating strands are `h_strands[h0 + k]` and `v_strands[v0 + k]`,
/// and the characters `a_rev[h0 + k]` vs `b[v0 + k]`.
#[inline]
pub(crate) fn diag_ranges(m: usize, n: usize, d: usize) -> (usize, usize, usize) {
    let j_lo = d.saturating_sub(m - 1);
    let j_hi = (d + 1).min(n);
    let h0 = if d < m { m - 1 - d } else { 0 };
    (h0, j_lo, j_hi - j_lo)
}

/// Shared driver: sweep all anti-diagonals, processing each with `inloop`.
fn sweep<T, S, F>(a: &[T], b: &[T], inloop: F) -> SemiLocalKernel
where
    T: Eq + Clone + Sync,
    S: StrandIx,
    F: Fn(&[T], &[T], &mut [S], &mut [S]),
{
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        return crate::recursive::base_kernel(a, b).expect("empty grid has a trivial kernel");
    }
    let a_rev: Vec<T> = a.iter().rev().cloned().collect();
    let mut h_strands: Vec<S> = (0..m).map(S::from_usize).collect();
    let mut v_strands: Vec<S> = (m..m + n).map(S::from_usize).collect();
    for d in 0..(m + n - 1) {
        let (h0, v0, len) = diag_ranges(m, n, d);
        inloop(
            &a_rev[h0..h0 + len],
            &b[v0..v0 + len],
            &mut h_strands[h0..h0 + len],
            &mut v_strands[v0..v0 + len],
        );
    }
    let h32: Vec<u32> = h_strands.iter().map(|s| s.to_u32()).collect();
    let v32: Vec<u32> = v_strands.iter().map(|s| s.to_u32()).collect();
    SemiLocalKernel::new(build_kernel(&h32, &v32), m, n)
}

#[inline(always)]
fn cell_branching<T: Eq, S: StrandIx>(ac: &T, bc: &T, h: &mut S, v: &mut S) {
    if ac == bc || *h > *v {
        std::mem::swap(h, v);
    }
}

#[inline(always)]
fn cell_branchless<T: Eq, S: StrandIx>(ac: &T, bc: &T, h: &mut S, v: &mut S) {
    let p = (ac == bc) | (*h > *v);
    let (nh, nv) = S::cswap(p, *h, *v);
    *h = nh;
    *v = nv;
}

/// `semi_antidiag`: sequential anti-diagonal combing with the branching
/// inner loop.
pub fn antidiag_combing<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
        for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
            cell_branching(ac, bc, h, v);
        }
    })
}

/// `semi_antidiag_SIMD`: sequential anti-diagonal combing with the
/// branchless (auto-vectorizable) inner loop, 32-bit strand indices.
pub fn antidiag_combing_branchless<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
        for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
            cell_branchless(ac, bc, h, v);
        }
    })
}

/// Branchless anti-diagonal combing with 16-bit strand indices — double
/// the SIMD lanes of [`antidiag_combing_branchless`].
///
/// # Panics
///
/// Panics if `m + n > 2¹⁶` (the index space of `u16`).
pub fn antidiag_combing_u16<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    assert!(
        a.len() + b.len() <= 1 << 16,
        "u16 strand indices require m + n ≤ 65536 (got {})",
        a.len() + b.len()
    );
    sweep::<_, u16, _>(a, b, |ar, bs, hs, vs| {
        for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
            cell_branchless(ac, bc, h, v);
        }
    })
}

/// Cells per rayon task; below this a diagonal chunk is not worth forking.
const PAR_GRAIN: usize = 8 * 1024;

/// [`par_antidiag_combing_branchless`] with an explicit rayon grain size
/// (minimum cells per task) — the ablation knob for the per-diagonal
/// fork/sync overhead discussed in §4.1.
pub fn par_antidiag_combing_branchless_grain<T: Eq + Clone + Sync>(
    a: &[T],
    b: &[T],
    grain: usize,
) -> SemiLocalKernel {
    let grain = grain.max(1);
    sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
        hs.par_iter_mut()
            .with_min_len(grain)
            .zip(vs.par_iter_mut())
            .zip(ar.par_iter().zip(bs.par_iter()))
            .for_each(|((h, v), (ac, bc))| cell_branchless(ac, bc, h, v));
    })
}

/// Thread-parallel `semi_antidiag` (branching inner loop) on the current
/// rayon pool, one barrier per anti-diagonal (Listing 4).
pub fn par_antidiag_combing<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
        hs.par_iter_mut()
            .with_min_len(PAR_GRAIN)
            .zip(vs.par_iter_mut())
            .zip(ar.par_iter().zip(bs.par_iter()))
            .for_each(|((h, v), (ac, bc))| cell_branching(ac, bc, h, v));
    })
}

/// Thread-parallel branchless anti-diagonal combing
/// (`semi_antidiag_SIMD`'s parallel form from Figures 7–8).
pub fn par_antidiag_combing_branchless<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    sweep::<_, u32, _>(a, b, |ar, bs, hs, vs| {
        hs.par_iter_mut()
            .with_min_len(PAR_GRAIN)
            .zip(vs.par_iter_mut())
            .zip(ar.par_iter().zip(bs.par_iter()))
            .for_each(|((h, v), (ac, bc))| cell_branchless(ac, bc, h, v));
    })
}

/// Thread-parallel branchless combing with 16-bit strand indices.
///
/// # Panics
///
/// Panics if `m + n > 2¹⁶`.
pub fn par_antidiag_combing_u16<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    assert!(
        a.len() + b.len() <= 1 << 16,
        "u16 strand indices require m + n ≤ 65536 (got {})",
        a.len() + b.len()
    );
    sweep::<_, u16, _>(a, b, |ar, bs, hs, vs| {
        hs.par_iter_mut()
            .with_min_len(PAR_GRAIN)
            .zip(vs.par_iter_mut())
            .zip(ar.par_iter().zip(bs.par_iter()))
            .for_each(|((h, v), (ac, bc))| cell_branchless(ac, bc, h, v));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative_combing;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xD1A6)
    }

    fn random_string(rng: &mut impl rand::Rng, len: usize, sigma: u8) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn diag_ranges_cover_every_cell_once() {
        for (m, n) in [(1usize, 1usize), (3, 5), (5, 3), (4, 4), (1, 7), (7, 1)] {
            let mut seen = vec![false; m * n];
            for d in 0..(m + n - 1) {
                let (h0, v0, len) = diag_ranges(m, n, d);
                for k in 0..len {
                    // cell (i, j): h index h0+k = m−1−i ⇒ i = m−1−(h0+k); j = v0+k
                    let i = m - 1 - (h0 + k);
                    let j = v0 + k;
                    assert!(i < m && j < n, "m={m} n={n} d={d} k={k}");
                    assert_eq!(i + j, d);
                    assert!(!seen[i * n + j], "cell revisited");
                    seen[i * n + j] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "m={m} n={n}: cells missed");
        }
    }

    #[test]
    fn all_variants_match_iterative_combing() {
        let mut rng = rng();
        for _ in 0..20 {
            let m = rng.random_range(1..40);
            let n = rng.random_range(1..40);
            let a = random_string(&mut rng, m, 3);
            let b = random_string(&mut rng, n, 3);
            let want = iterative_combing(&a, &b);
            assert_eq!(antidiag_combing(&a, &b), want, "branching a={a:?} b={b:?}");
            assert_eq!(antidiag_combing_branchless(&a, &b), want, "branchless a={a:?} b={b:?}");
            assert_eq!(antidiag_combing_u16(&a, &b), want, "u16 a={a:?} b={b:?}");
            assert_eq!(par_antidiag_combing(&a, &b), want, "par a={a:?} b={b:?}");
            assert_eq!(
                par_antidiag_combing_branchless(&a, &b),
                want,
                "par branchless a={a:?} b={b:?}"
            );
            assert_eq!(par_antidiag_combing_u16(&a, &b), want, "par u16 a={a:?} b={b:?}");
        }
    }

    #[test]
    fn empty_inputs() {
        let want = iterative_combing(b"abc", b"");
        assert_eq!(antidiag_combing(b"abc", b""), want);
        assert_eq!(antidiag_combing_branchless(b"", b"xy"), iterative_combing(b"", b"xy"));
    }

    #[test]
    #[should_panic(expected = "65536")]
    fn u16_variant_rejects_oversized_inputs() {
        let a = vec![0u8; 40_000];
        let b = vec![1u8; 40_000];
        antidiag_combing_u16(&a, &b);
    }

    #[test]
    fn cswap_is_branch_free_semantics() {
        assert_eq!(u32::cswap(true, 7, 9), (9, 7));
        assert_eq!(u32::cswap(false, 7, 9), (7, 9));
        assert_eq!(u16::cswap(true, 0, u16::MAX - 1), (u16::MAX - 1, 0));
    }
}
