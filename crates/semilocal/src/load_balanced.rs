//! Load-balanced iterative combing (§4.1, Figure 2 of the paper).
//!
//! Anti-diagonal combing has three phases: growing diagonals (top-left
//! triangle), full-length diagonals (the central parallelogram), and
//! shrinking diagonals (bottom-right triangle). Uneven diagonal lengths
//! cause poor load balance, so the paper reorders: phases 1 and 3 are
//! *independent sub-braids* that can be combed simultaneously — pairing
//! growing diagonal `t` (length `t+1`) with shrinking diagonal `n+t`
//! (length `m−1−t`) processes exactly `m` cells per iteration — and the
//! three phase braids are then composed with two sticky braid
//! multiplications.
//!
//! # Position labelings
//!
//! Each phase is a braid word on all `m+n` strand positions; combing it
//! independently requires labeling strands by their **position along the
//! phase's entry cut** (bottom-left → top-right) and reading ends off the
//! exit cut. For `m ≤ n` the three cuts are (h = horizontal slot `k`,
//! v = vertical slot `j`):
//!
//! ```text
//! boundary (phase-1 entry):   h_k ↦ k,            v_j ↦ m + j
//! after diag m−2 (1 ⇄ 2):     h_k ↦ 2k,           v_j ↦ 2j+1 (j<m), m+j (j≥m)
//! after diag n−1 (2 ⇄ 3):     v_j ↦ j (j ≤ n−m),  h_k ↦ n−m+1+2k,
//!                             v_j ↦ n−m+2(j−n+m)−1… i.e. n−m+2(j−(n−m+1))+2 (j > n−m)
//! boundary (phase-3 exit):    v_j ↦ j,            h_k ↦ n + k
//! ```
//!
//! (derived by walking each staircase cut; the unit tests check the
//! composed result against plain iterative combing on random inputs,
//! which pins every formula).

use crate::antidiag::StrandIx;
use crate::compose::{BraidMultiplier, CombinedMultiplier};
use crate::kernel::SemiLocalKernel;
use slcs_perm::Permutation;

/// Sequential load-balanced combing: three independently-combed phase
/// braids composed by braid multiplication (the paper's
/// `semi_load_balanced`, sequential flavor of Figure 4(c)).
pub fn load_balanced_combing<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    load_balanced_impl(a, b, false)
}

/// Thread-parallel load-balanced combing: one worker team pinned for the
/// whole sweep. Fused phase-1/phase-3 iterations of exactly `m` cells
/// and the full-length phase-2 diagonals are split across the team, with
/// one barrier per iteration instead of a fork/join per diagonal
/// (Figures 7–8).
pub fn par_load_balanced_combing<T: Eq + Clone + Sync>(a: &[T], b: &[T]) -> SemiLocalKernel {
    load_balanced_impl(a, b, true)
}

fn load_balanced_impl<T: Eq + Clone + Sync>(a: &[T], b: &[T], parallel: bool) -> SemiLocalKernel {
    let m = a.len();
    let n = b.len();
    if m == 0 || n == 0 {
        // PANIC: base_kernel never fails when one side is empty.
        return crate::recursive::base_kernel(a, b).expect("empty grid has a trivial kernel");
    }
    if m > n {
        // Comb the transposed grid and flip back (Theorem 3.5).
        return load_balanced_impl(b, a, parallel).flip();
    }
    let a_rev: Vec<T> = a.iter().rev().cloned().collect();

    // Entry-cut labelings for each phase (see module docs).
    let mut h1: Vec<u32> = (0..m as u32).collect();
    let mut v1: Vec<u32> = (m as u32..(m + n) as u32).collect();
    let mut h2: Vec<u32> = (0..m as u32).map(|k| 2 * k).collect();
    let mut v2: Vec<u32> =
        (0..n as u32).map(|j| if (j as usize) < m { 2 * j + 1 } else { m as u32 + j }).collect();
    let mid = (n - m) as u32; // last fully-processed bottom column at the 2⇄3 cut
    let mut h3: Vec<u32> = (0..m as u32).map(|k| mid + 1 + 2 * k).collect();
    let mut v3: Vec<u32> =
        (0..n as u32).map(|j| if j <= mid { j } else { mid + 2 + 2 * (j - mid - 1) }).collect();

    // Every sweep iteration (fused 1⊕3 or phase 2) processes ~m cells,
    // so a team bigger than m / grain members can never all be busy.
    // The grain comes from the measured tuning profile when one exists
    // (`slcs tune` fits it alongside the mode crossovers); without a
    // profile this is exactly `par_grain()`.
    let (_, grain) = crate::tuning::auto_plan(m, n, rayon::current_num_threads());
    let team = if parallel { rayon::current_num_threads().min(m / grain).max(1) } else { 1 };
    if team > 1 {
        let shared = [
            SharedPhase { h: h1.as_mut_ptr(), v: v1.as_mut_ptr() },
            SharedPhase { h: h2.as_mut_ptr(), v: v2.as_mut_ptr() },
            SharedPhase { h: h3.as_mut_ptr(), v: v3.as_mut_ptr() },
        ];
        let a_rev = &a_rev[..];
        rayon::team_run(team, |view| {
            // Fused phases 1 and 3: iteration t processes growing
            // diagonal t and shrinking diagonal n + t — m cells total,
            // split across the team as one combined index range.
            for t in 0..m.saturating_sub(1) {
                let (g_h0, g_v0, g_len) = diag(m, n, t);
                let (s_h0, s_v0, s_len) = diag(m, n, n + t);
                let total = g_len + s_len;
                let (lo, hi) = member_range(total, grain, &view);
                if lo < g_len {
                    let e = hi.min(g_len);
                    // SAFETY: members cover disjoint subranges; the
                    // barrier below sequences iterations.
                    unsafe { shared[0].comb(a_rev, b, g_h0 + lo, g_v0 + lo, e - lo) };
                }
                if hi > g_len {
                    let (s_lo, s_hi) = (lo.max(g_len) - g_len, hi - g_len);
                    // SAFETY: same disjoint-subrange argument; shared[2] is the spill grid.
                    unsafe { shared[2].comb(a_rev, b, s_h0 + s_lo, s_v0 + s_lo, s_hi - s_lo) };
                }
                if !view.barrier() {
                    return;
                }
            }
            // Phase 2: the full-length diagonals.
            for d in (m - 1)..n {
                let (h0, v0, len) = diag(m, n, d);
                let (lo, hi) = member_range(len, grain, &view);
                if lo < hi {
                    // SAFETY: member_range assigns disjoint subranges and the barrier below
                    // sequences diagonals.
                    unsafe { shared[1].comb(a_rev, b, h0 + lo, v0 + lo, hi - lo) };
                }
                if !view.barrier() {
                    return;
                }
            }
        });
    } else {
        for t in 0..m.saturating_sub(1) {
            let (g_h0, g_v0, g_len) = diag(m, n, t);
            let (s_h0, s_v0, s_len) = diag(m, n, n + t);
            comb_diag(
                &a_rev[g_h0..g_h0 + g_len],
                &b[g_v0..g_v0 + g_len],
                &mut h1[g_h0..g_h0 + g_len],
                &mut v1[g_v0..g_v0 + g_len],
            );
            comb_diag(
                &a_rev[s_h0..s_h0 + s_len],
                &b[s_v0..s_v0 + s_len],
                &mut h3[s_h0..s_h0 + s_len],
                &mut v3[s_v0..s_v0 + s_len],
            );
        }
        for d in (m - 1)..n {
            let (h0, v0, len) = diag(m, n, d);
            comb_diag(
                &a_rev[h0..h0 + len],
                &b[v0..v0 + len],
                &mut h2[h0..h0 + len],
                &mut v2[v0..v0 + len],
            );
        }
    }

    // Exit-cut extraction of the three phase braids.
    let order = m + n;
    let k1 = {
        let mut fwd = vec![0u32; order];
        for (k, &s) in h1.iter().enumerate() {
            fwd[s as usize] = 2 * k as u32;
        }
        for (j, &s) in v1.iter().enumerate() {
            fwd[s as usize] = if j < m { 2 * j as u32 + 1 } else { (m + j) as u32 };
        }
        Permutation::from_forward_unchecked(fwd)
    };
    let k2 = {
        let mut fwd = vec![0u32; order];
        for (k, &s) in h2.iter().enumerate() {
            fwd[s as usize] = mid + 1 + 2 * k as u32;
        }
        for (j, &s) in v2.iter().enumerate() {
            let j = j as u32;
            fwd[s as usize] = if j <= mid { j } else { mid + 2 + 2 * (j - mid - 1) };
        }
        Permutation::from_forward_unchecked(fwd)
    };
    let k3 = {
        let mut fwd = vec![0u32; order];
        for (k, &s) in h3.iter().enumerate() {
            fwd[s as usize] = (n + k) as u32;
        }
        for (j, &s) in v3.iter().enumerate() {
            fwd[s as usize] = j as u32;
        }
        Permutation::from_forward_unchecked(fwd)
    };

    // Compose in sweep order: the grid braid word is W1 · W2 · W3.
    let mut mul = CombinedMultiplier::new(order);
    let k12 = mul.multiply(&k1, &k2);
    let kernel = mul.multiply(&k12, &k3);
    SemiLocalKernel::new(kernel, m, n)
}

/// Anti-diagonal geometry (shared with `antidiag`, restated here for the
/// phase ranges): returns `(h0, v0, len)` for diagonal `d`.
#[inline]
fn diag(m: usize, n: usize, d: usize) -> (usize, usize, usize) {
    let j_lo = d.saturating_sub(m - 1);
    let j_hi = (d + 1).min(n);
    let h0 = if d < m { m - 1 - d } else { 0 };
    (h0, j_lo, j_hi - j_lo)
}

fn comb_diag<T: Eq>(ar: &[T], bs: &[T], hs: &mut [u32], vs: &mut [u32]) {
    for ((ac, bc), (h, v)) in ar.iter().zip(bs).zip(hs.iter_mut().zip(vs)) {
        let p = (ac == bc) | (*h > *v);
        let (nh, nv) = u32::cswap(p, *h, *v);
        *h = nh;
        *v = nv;
    }
}

/// The contiguous subrange of `len` cells that `view`'s member combs this
/// iteration: short ranges activate fewer members (grain-bounded), and
/// inactive members get the empty range.
fn member_range(len: usize, grain: usize, view: &rayon::TeamView<'_>) -> (usize, usize) {
    let active = view.size.min(len.div_ceil(grain)).max(1);
    if view.id >= active {
        return (0, 0);
    }
    let chunk = len.div_ceil(active);
    let lo = (view.id * chunk).min(len);
    (lo, (lo + chunk).min(len))
}

/// One phase's strand arrays, shared across team members. Members only
/// write the disjoint ranges [`member_range`] assigns them, and the team
/// barrier sequences iterations, so the aliasing is benign.
struct SharedPhase {
    h: *mut u32,
    v: *mut u32,
}

// SAFETY: see the struct docs — disjoint member ranges, barrier-sequenced
// iterations.
unsafe impl Sync for SharedPhase {}

impl SharedPhase {
    /// Combs `len` cells starting at `h_off`/`v_off`.
    ///
    /// # Safety
    ///
    /// The range must be in bounds and disjoint from every range any
    /// other member touches between two barriers.
    unsafe fn comb<T: Eq>(&self, a_rev: &[T], b: &[T], h_off: usize, v_off: usize, len: usize) {
        // SAFETY: in-bounds and disjoint by the function's contract.
        let hs = unsafe { std::slice::from_raw_parts_mut(self.h.add(h_off), len) };
        let vs = unsafe { std::slice::from_raw_parts_mut(self.v.add(v_off), len) };
        comb_diag(&a_rev[h_off..h_off + len], &b[v_off..v_off + len], hs, vs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iterative_combing;
    use rand::{RngExt, SeedableRng};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x10AD)
    }

    fn random_string(rng: &mut impl rand::Rng, len: usize, sigma: u8) -> Vec<u8> {
        (0..len).map(|_| rng.random_range(0..sigma)).collect()
    }

    #[test]
    fn matches_iterative_on_random_inputs() {
        let mut rng = rng();
        for _ in 0..30 {
            let m = rng.random_range(1..30);
            let n = rng.random_range(1..30);
            let a = random_string(&mut rng, m, 3);
            let b = random_string(&mut rng, n, 3);
            assert_eq!(load_balanced_combing(&a, &b), iterative_combing(&a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn matches_iterative_on_shape_extremes() {
        let mut rng = rng();
        for (m, n) in [(1, 1), (1, 20), (20, 1), (2, 2), (16, 16), (3, 17), (17, 3)] {
            let a = random_string(&mut rng, m, 2);
            let b = random_string(&mut rng, n, 2);
            assert_eq!(
                load_balanced_combing(&a, &b),
                iterative_combing(&a, &b),
                "m={m} n={n} a={a:?} b={b:?}"
            );
            assert_eq!(
                par_load_balanced_combing(&a, &b),
                iterative_combing(&a, &b),
                "par m={m} n={n}"
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = rng();
        let a = random_string(&mut rng, 300, 4);
        let b = random_string(&mut rng, 500, 4);
        assert_eq!(par_load_balanced_combing(&a, &b), load_balanced_combing(&a, &b));
    }
}
