//! Linear-time suffix-array construction (SA-IS, Nong–Zhang–Chan).
//!
//! The LCP oracle feeds this the concatenation of the two input strings
//! with a unique separator and a unique smallest sentinel; the contract
//! here is the classic SA-IS one: `text` is non-empty, every symbol is
//! `< alphabet`, and the final symbol is a unique minimum.

/// Placeholder for "no suffix here yet" during induced sorting. Input
/// lengths are far below `u32::MAX`, so the value can never collide
/// with a real suffix start.
const EMPTY: u32 = u32::MAX;

/// Suffix array of `text`: `sa[r]` is the start of the rank-`r` suffix.
pub fn suffix_array(text: &[u32], alphabet: usize) -> Vec<u32> {
    assert!(!text.is_empty(), "SA-IS needs a sentinel-terminated text");
    debug_assert!(text.iter().all(|&c| (c as usize) < alphabet));
    debug_assert!(text.len() < EMPTY as usize);
    let mut sa = vec![EMPTY; text.len()];
    sais(text, alphabet, &mut sa);
    sa
}

fn sais(text: &[u32], alphabet: usize, sa: &mut [u32]) {
    let n = text.len();
    if n == 1 {
        sa[0] = 0;
        return;
    }
    // S/L classification; an LMS position is an S-type right after an L.
    let mut is_s = vec![false; n];
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = text[i] < text[i + 1] || (text[i] == text[i + 1] && is_s[i + 1]);
    }
    let mut bucket = vec![0u32; alphabet];
    for &c in text {
        bucket[c as usize] += 1;
    }

    // Pass 1: drop LMS suffixes at their bucket tails in any order and
    // induce; afterwards the LMS *substrings* appear in sorted order.
    sa.fill(EMPTY);
    let mut tails = bucket_tails(&bucket);
    for (i, &sym) in text.iter().enumerate().skip(1) {
        if is_lms(&is_s, i) {
            let c = sym as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = i as u32;
        }
    }
    induce(text, &is_s, &bucket, sa);

    // Name the sorted LMS substrings; equal substrings share a name, so
    // the reduced string preserves the suffix order of the original.
    let mut names = vec![EMPTY; n];
    let mut name = 0u32;
    let mut prev = EMPTY;
    for &s in sa.iter() {
        let j = s as usize;
        if !is_lms(&is_s, j) {
            continue;
        }
        if prev != EMPTY && !lms_equal(text, &is_s, prev as usize, j) {
            name += 1;
        }
        names[j] = name;
        prev = j as u32;
    }
    let lms_positions: Vec<u32> = (1..n).filter(|&i| is_lms(&is_s, i)).map(|i| i as u32).collect();
    let reduced: Vec<u32> = lms_positions.iter().map(|&i| names[i as usize]).collect();
    let num_names = (name + 1) as usize;
    let mut reduced_sa = vec![EMPTY; reduced.len()];
    if num_names < reduced.len() {
        sais(&reduced, num_names, &mut reduced_sa);
    } else {
        // Every name unique: the reduced SA is just the inverse map.
        for (i, &nm) in reduced.iter().enumerate() {
            reduced_sa[nm as usize] = i as u32;
        }
    }

    // Pass 2: re-drop the LMS suffixes in their now fully sorted order
    // (reversed, tails fill right-to-left) and induce the final array.
    sa.fill(EMPTY);
    let mut tails = bucket_tails(&bucket);
    for &r in reduced_sa.iter().rev() {
        let j = lms_positions[r as usize];
        let c = text[j as usize] as usize;
        tails[c] -= 1;
        sa[tails[c] as usize] = j;
    }
    induce(text, &is_s, &bucket, sa);
}

fn is_lms(is_s: &[bool], i: usize) -> bool {
    i > 0 && is_s[i] && !is_s[i - 1]
}

fn bucket_heads(bucket: &[u32]) -> Vec<u32> {
    let mut heads = vec![0u32; bucket.len()];
    let mut sum = 0;
    for (h, &b) in heads.iter_mut().zip(bucket) {
        *h = sum;
        sum += b;
    }
    heads
}

fn bucket_tails(bucket: &[u32]) -> Vec<u32> {
    let mut tails = vec![0u32; bucket.len()];
    let mut sum = 0;
    for (t, &b) in tails.iter_mut().zip(bucket) {
        sum += b;
        *t = sum;
    }
    tails
}

/// Induced sort: scan left-to-right placing L-type suffixes at bucket
/// heads, then right-to-left placing S-type suffixes at bucket tails.
fn induce(text: &[u32], is_s: &[bool], bucket: &[u32], sa: &mut [u32]) {
    let n = text.len();
    let mut heads = bucket_heads(bucket);
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if !is_s[p] {
                let c = text[p] as usize;
                sa[heads[c] as usize] = j - 1;
                heads[c] += 1;
            }
        }
    }
    let mut tails = bucket_tails(bucket);
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if is_s[p] {
                let c = text[p] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = j - 1;
            }
        }
    }
}

/// Equality of the LMS substrings starting at `a` and `b`: identical
/// symbols all the way to (and including) the next LMS position on
/// both sides. The sentinel's substring is the unique one-symbol tail.
fn lms_equal(text: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    if a == b {
        return true;
    }
    let n = text.len();
    if a == n - 1 || b == n - 1 {
        return false;
    }
    let mut k = 0;
    loop {
        let (ak, bk) = (a + k, b + k);
        if ak >= n || bk >= n || text[ak] != text[bk] {
            return false;
        }
        if k > 0 {
            let (al, bl) = (is_lms(is_s, ak), is_lms(is_s, bk));
            if al || bl {
                return al && bl;
            }
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_sa(text: &[u32]) -> Vec<u32> {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&i, &j| text[i as usize..].cmp(&text[j as usize..]));
        sa
    }

    fn with_sentinel(body: &[u32]) -> Vec<u32> {
        let mut text: Vec<u32> = body.iter().map(|&c| c + 1).collect();
        text.push(0);
        text
    }

    #[test]
    fn matches_naive_on_classic_examples() {
        for body in [
            &b"banana"[..],
            b"mississippi",
            b"abracadabra",
            b"aaaaaaaa",
            b"abababab",
            b"zyxwv",
            b"a",
        ] {
            let text = with_sentinel(&body.iter().map(|&c| c as u32).collect::<Vec<_>>());
            let sigma = text.iter().max().map_or(1, |&c| c as usize + 1);
            assert_eq!(suffix_array(&text, sigma), naive_sa(&text), "{body:?}");
        }
    }

    #[test]
    fn matches_naive_on_pseudorandom_strings() {
        // Tiny deterministic LCG — exercises repeats and runs without
        // pulling the rand crate into this leaf crate's dev-deps.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |bound: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % bound
        };
        for sigma in [2u32, 3, 16] {
            for len in [2usize, 7, 64, 257] {
                let body: Vec<u32> = (0..len).map(|_| next(sigma)).collect();
                let text = with_sentinel(&body);
                assert_eq!(
                    suffix_array(&text, sigma as usize + 1),
                    naive_sa(&text),
                    "sigma={sigma} len={len}"
                );
            }
        }
    }

    #[test]
    fn sentinel_only_text() {
        assert_eq!(suffix_array(&[0], 1), vec![0]);
    }
}
