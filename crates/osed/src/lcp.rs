//! Kasai LCP array, sparse-table RMQ, and the two-string LCP oracle.
//!
//! [`LcpOracle::build`] concatenates the two inputs with a unique
//! separator and a unique smallest sentinel, builds the suffix array
//! (SA-IS), the adjacent-rank LCP array (Kasai), and an idempotent
//! sparse table over it, after which [`LcpOracle::lcp`] answers "how
//! far do `a[i..]` and `b[j..]` match?" in O(1).

use crate::suffix::suffix_array;

/// `lcp[r]` = longest common prefix of the rank-`r` and rank-`r−1`
/// suffixes (`lcp[0] = 0`), by Kasai's h-decrement scan.
fn kasai(text: &[u32], sa: &[u32], rank: &[u32]) -> Vec<u32> {
    let n = text.len();
    let mut lcp = vec![0u32; n];
    let mut h = 0usize;
    for i in 0..n {
        let r = rank[i] as usize;
        if r == 0 {
            h = 0;
            continue;
        }
        let j = sa[r - 1] as usize;
        while i + h < n && j + h < n && text[i + h] == text[j + h] {
            h += 1;
        }
        lcp[r] = h as u32;
        h = h.saturating_sub(1);
    }
    lcp
}

/// Range-minimum in O(1) after an O(n log n) doubling table.
pub struct SparseTable {
    /// `rows[k][i]` = min over `data[i .. i + 2^k]`.
    rows: Vec<Vec<u32>>,
}

impl SparseTable {
    pub fn new(data: &[u32]) -> SparseTable {
        let n = data.len();
        let levels = if n == 0 { 1 } else { usize::BITS as usize - n.leading_zeros() as usize };
        let mut rows = Vec::with_capacity(levels);
        rows.push(data.to_vec());
        for k in 1..levels {
            let half = 1usize << (k - 1);
            let prev = &rows[k - 1];
            let len = n + 1 - (1 << k);
            let mut row = Vec::with_capacity(len);
            for i in 0..len {
                row.push(prev[i].min(prev[i + half]));
            }
            rows.push(row);
        }
        SparseTable { rows }
    }

    /// Minimum over the inclusive range `[l, r]` (two overlapping
    /// power-of-two windows; min is idempotent so the overlap is free).
    pub fn min(&self, l: usize, r: usize) -> u32 {
        debug_assert!(l <= r && r < self.rows[0].len());
        let k = (usize::BITS - 1 - (r - l + 1).leading_zeros()) as usize;
        self.rows[k][l].min(self.rows[k][r + 1 - (1usize << k)])
    }
}

/// O(1) longest-common-prefix queries between suffixes of two fixed
/// strings, the oracle behind the diagonal BFS.
pub struct LcpOracle {
    a: Vec<u8>,
    b: Vec<u8>,
    /// SA rank of the concatenation suffix starting at `a[i]`.
    rank_a: Vec<u32>,
    /// SA rank of the concatenation suffix starting at `b[j]`.
    rank_b: Vec<u32>,
    /// RMQ over the Kasai LCP array (row 0 of the table *is* the array).
    rmq: SparseTable,
}

impl LcpOracle {
    /// Builds the oracle in O((n + m) log (n + m)) time (SA-IS is
    /// linear; the sparse table pays the log factor).
    pub fn build(a: &[u8], b: &[u8]) -> LcpOracle {
        let (n, m) = (a.len(), b.len());
        let total = n + m + 2;
        // Concatenate `a`, a separator, `b`, and a smallest sentinel,
        // shifting bytes by 2 so symbols 0 and 1 stay unique. Neither
        // delimiter can match anything else, so a computed LCP never
        // crosses a string boundary and needs no clamping.
        let (text, sa) = {
            let _span = slcs_trace::span!("osed.sa_build", "len" => total);
            let _mem = slcs_alloc::alloc_scope!("osed.sa_build.mem");
            let mut text = Vec::with_capacity(total);
            text.extend(a.iter().map(|&c| u32::from(c) + 2));
            text.push(1);
            text.extend(b.iter().map(|&c| u32::from(c) + 2));
            text.push(0);
            let sa = suffix_array(&text, 258);
            (text, sa)
        };
        let _span = slcs_trace::span!("osed.lcp_build", "len" => total);
        let _mem = slcs_alloc::alloc_scope!("osed.lcp_build.mem");
        let mut rank = vec![0u32; total];
        for (r, &p) in sa.iter().enumerate() {
            rank[p as usize] = r as u32;
        }
        let lcp = kasai(&text, &sa, &rank);
        let rmq = SparseTable::new(&lcp);
        let rank_b = rank[n + 1..n + 1 + m].to_vec();
        rank.truncate(n);
        LcpOracle { a: a.to_vec(), b: b.to_vec(), rank_a: rank, rank_b, rmq }
    }

    /// Length of the longest common prefix of `a[i..]` and `b[j..]`.
    ///
    /// Mostly-matching rounds of the BFS extend by only a few symbols,
    /// so an 8-byte direct probe (parlay's trick) runs first; only a
    /// probe that survives all 8 comparisons pays the RMQ lookup.
    pub fn lcp(&self, i: usize, j: usize) -> usize {
        if i >= self.a.len() || j >= self.b.len() {
            return 0;
        }
        let probe = (self.a.len() - i).min(self.b.len() - j).min(8);
        for k in 0..probe {
            if self.a[i + k] != self.b[j + k] {
                return k;
            }
        }
        if probe < 8 {
            // One string ran out while every byte matched.
            return probe;
        }
        let (mut l, mut r) = (self.rank_a[i], self.rank_b[j]);
        if l > r {
            std::mem::swap(&mut l, &mut r);
        }
        self.rmq.min(l as usize + 1, r as usize) as usize
    }

    /// Lengths of the strings this oracle was built from.
    pub fn lens(&self) -> (usize, usize) {
        (self.a.len(), self.b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_lcp(a: &[u8], b: &[u8], i: usize, j: usize) -> usize {
        a[i..].iter().zip(&b[j..]).take_while(|(x, y)| x == y).count()
    }

    #[test]
    fn sparse_table_matches_scan_min() {
        let data = [5u32, 3, 9, 3, 0, 7, 2, 8, 1];
        let st = SparseTable::new(&data);
        for l in 0..data.len() {
            for r in l..data.len() {
                let want = data[l..=r].iter().min().copied().unwrap_or(u32::MAX);
                assert_eq!(st.min(l, r), want, "[{l}, {r}]");
            }
        }
    }

    #[test]
    fn oracle_matches_naive_lcp_everywhere() {
        let a = b"abracadabra";
        let b = b"abracedabracadabra";
        let oracle = LcpOracle::build(a, b);
        for i in 0..=a.len() {
            for j in 0..=b.len() {
                assert_eq!(oracle.lcp(i, j), naive_lcp(a, b, i, j), "({i}, {j})");
            }
        }
    }

    #[test]
    fn oracle_handles_long_runs_past_the_probe() {
        // Common prefixes longer than the 8-byte probe force the RMQ
        // path; the separator must stop the match at a string boundary.
        let a = vec![b'x'; 40];
        let mut b = vec![b'x'; 33];
        b.push(b'y');
        let oracle = LcpOracle::build(&a, &b);
        assert_eq!(oracle.lcp(0, 0), 33);
        assert_eq!(oracle.lcp(10, 0), 30);
        assert_eq!(oracle.lcp(0, 20), 13);
    }

    #[test]
    fn oracle_tolerates_empty_strings() {
        let oracle = LcpOracle::build(b"", b"abc");
        assert_eq!(oracle.lcp(0, 0), 0);
        let oracle = LcpOracle::build(b"", b"");
        assert_eq!(oracle.lcp(0, 0), 0);
    }

    #[test]
    fn full_byte_range_symbols_are_handled() {
        let a: Vec<u8> = (0..=255u8).collect();
        let b: Vec<u8> = (0..=255u8).collect();
        let oracle = LcpOracle::build(&a, &b);
        assert_eq!(oracle.lcp(0, 0), 256);
        assert_eq!(oracle.lcp(100, 100), 156);
        assert_eq!(oracle.lcp(0, 1), 0);
    }
}
