//! Landau–Vishkin diagonal BFS over the LCP oracle: O(n + m + d²)
//! edit distance, output-sensitive in the distance `d`.
//!
//! Grid position `(i, j)` (a prefix pair `a[..i]`, `b[..j]`) lives on
//! diagonal `id = i − j + m`; `max_row[id]` after round `k` is the
//! largest `i` such that some position on `id` is reachable with at
//! most `k` edits (−1 when none is), always slid to the end of its
//! matching run via the oracle. Round `k + 1` extends every diagonal
//! from its three round-`k` neighbors *only*: new values are computed
//! into a scratch row and copied back, so the parallel variant is
//! bit-equivalent to the sequential one by construction.

use crate::lcp::LcpOracle;
use rayon::prelude::*;

/// Frontier width below which even the parallel variant extends
/// sequentially: a BFS round is O(width) cells of O(1) work, which
/// only amortizes task overhead once the frontier is wide.
pub const PAR_GRAIN: usize = 4096;

/// Global edit distance, sequential.
pub fn edit_distance(a: &[u8], b: &[u8]) -> usize {
    // PANIC: unreachable — the uncapped BFS always terminates with a distance.
    diagonal_bfs(a, b, None, None).expect("uncapped BFS yields a distance")
}

/// Global edit distance if it is `≤ k`, else `None`. Exits before
/// round `k + 1`, and skips the oracle build entirely when the length
/// difference alone exceeds `k`.
pub fn edit_distance_bounded(a: &[u8], b: &[u8], k: usize) -> Option<usize> {
    diagonal_bfs(a, b, Some(k), None)
}

/// Global edit distance with per-round frontier extension on the
/// rayon pool (grain [`PAR_GRAIN`]); bit-equivalent to
/// [`edit_distance`].
pub fn par_edit_distance(a: &[u8], b: &[u8]) -> usize {
    par_edit_distance_grain(a, b, PAR_GRAIN)
}

/// [`par_edit_distance`] with an explicit grain (frontier cells per
/// task), for benchmarks probing the overhead crossover.
pub fn par_edit_distance_grain(a: &[u8], b: &[u8], grain: usize) -> usize {
    // PANIC: unreachable — the uncapped BFS always terminates with a distance.
    diagonal_bfs(a, b, None, Some(grain.max(1))).expect("uncapped BFS yields a distance")
}

fn diagonal_bfs(a: &[u8], b: &[u8], cap: Option<usize>, par: Option<usize>) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        // Pure insertions/deletions; no oracle needed.
        let d = n + m;
        return match cap {
            Some(k) if d > k => None,
            _ => Some(d),
        };
    }
    if let Some(k) = cap {
        // d ≥ |n − m| (the length gap is all indels): a hopeless bound
        // is rejected before paying for the oracle.
        if n.abs_diff(m) > k {
            return None;
        }
    }
    let _span = slcs_trace::span!("osed.edit", "n" => n, "m" => m);
    let oracle = LcpOracle::build(a, b);
    let diags = n + m + 1;
    let target = n; // Diag(n, m)
    let mut max_row: Vec<i32> = vec![-1; diags];
    let mut next: Vec<i32> = vec![-1; diags];
    max_row[m] = oracle.lcp(0, 0) as i32; // Diag(0, 0), slid down its run
    if max_row[target] == n as i32 {
        return Some(0);
    }
    let mut k = 0usize;
    loop {
        k += 1;
        if let Some(cap) = cap {
            if k > cap {
                return None;
            }
        }
        debug_assert!(k <= n + m, "BFS must terminate by round n + m");
        let lo = m - k.min(m);
        let hi = m + k.min(n);
        let _round = slcs_trace::span!("osed.bfs_round", "k" => k, "width" => hi - lo + 1);
        let front = &max_row;
        let window = &mut next[lo..=hi];
        match par {
            // Below 2× the grain a split yields at most one extra task;
            // not worth waking the pool.
            Some(grain) if window.len() >= grain.saturating_mul(2) => {
                window
                    .par_iter_mut()
                    .with_min_len(grain)
                    .enumerate()
                    .for_each(|(off, slot)| *slot = extend_diag(&oracle, front, lo + off, n, m));
            }
            _ => {
                for (off, slot) in window.iter_mut().enumerate() {
                    *slot = extend_diag(&oracle, front, lo + off, n, m);
                }
            }
        }
        max_row[lo..=hi].copy_from_slice(&next[lo..=hi]);
        if max_row[target] == n as i32 {
            return Some(k);
        }
    }
}

/// One frontier cell: the furthest row on diagonal `id` reachable with
/// one more edit than the round-`k−1` frontier `front`, slid down its
/// matching run. Pure in `front`, so cells of a round are independent.
fn extend_diag(oracle: &LcpOracle, front: &[i32], id: usize, n: usize, m: usize) -> i32 {
    let mut t: i32 = -1;
    // Substitution: stay on `id`. At a grid edge nothing is left to
    // substitute, but the position itself stays reachable.
    let cur = front[id];
    if cur >= 0 {
        let i = cur as usize;
        let j = i + m - id;
        t = if i == n || j == m { cur } else { (i + 1 + oracle.lcp(i + 1, j + 1)) as i32 };
    }
    // From `id − 1`: delete `a[i]` (advance the row) — or, when the
    // row is already exhausted, delete `b[j − 1]` instead; both single
    // edits land on `id`.
    if id > 0 {
        let up = front[id - 1];
        if up >= 0 {
            let i = up as usize;
            let j = i + m - (id - 1);
            let cand = if i == n {
                // (n, j) → (n, j − 1); j ≥ 1 because id − 1 ≤ n + m − 1.
                n as i32
            } else {
                (i + 1 + oracle.lcp(i + 1, j)) as i32
            };
            t = t.max(cand);
        }
    }
    // From `id + 1`: insert `b[j]` (advance the column) — or, when the
    // column is already exhausted, drop the last row instead.
    if id + 1 < front.len() {
        let down = front[id + 1];
        if down >= 0 {
            let i = down as usize;
            let j = i + m - (id + 1);
            let cand = if j == m {
                // (i, m) → (i − 1, m); j = m forces i = id + 1 ≥ 1.
                i as i32 - 1
            } else {
                (i + oracle.lcp(i, j + 1)) as i32
            };
            t = t.max(cand);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use slcs_baselines::edit_distance as dp_edit_distance;

    #[test]
    fn classic_pairs_match_the_dp() {
        for (a, b) in [
            (&b"kitten"[..], &b"sitting"[..]),
            (b"flaw", b"lawn"),
            (b"", b"abc"),
            (b"abc", b""),
            (b"", b""),
            (b"same", b"same"),
            (b"abcdef", b"fedcba"),
            (b"aaaa", b"bbbb"),
            (b"ab", b"ba"),
        ] {
            let want = dp_edit_distance(a, b);
            assert_eq!(edit_distance(a, b), want, "{a:?} vs {b:?}");
            assert_eq!(par_edit_distance(a, b), want, "par {a:?} vs {b:?}");
        }
    }

    #[test]
    fn boundary_shapes_exercise_the_edge_rules() {
        // Prefix pairs and single-sided extensions drive the i = n and
        // j = m branches of the frontier extension.
        for (a, b) in [
            (&b"abc"[..], &b"abcdef"[..]),
            (b"abcdef", b"abc"),
            (b"xabc", b"abc"),
            (b"abc", b"abcx"),
            (b"a", b"aaaaaaa"),
            (b"aaaaaaa", b"a"),
            (b"abcabcabc", b"abc"),
        ] {
            assert_eq!(edit_distance(a, b), dp_edit_distance(a, b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn pseudorandom_pairs_match_the_dp() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move |bound: u32| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % bound
        };
        for sigma in [2u32, 4, 26] {
            for (la, lb) in [(1usize, 1usize), (13, 7), (64, 64), (200, 150)] {
                let a: Vec<u8> = (0..la).map(|_| b'a' + next(sigma) as u8).collect();
                let b: Vec<u8> = (0..lb).map(|_| b'a' + next(sigma) as u8).collect();
                let want = dp_edit_distance(&a, &b);
                assert_eq!(edit_distance(&a, &b), want, "sigma={sigma} {la}x{lb}");
                assert_eq!(par_edit_distance_grain(&a, &b, 4), want, "par sigma={sigma}");
            }
        }
    }

    #[test]
    fn bounded_variant_is_exact_below_the_cap_and_none_above() {
        let (a, b) = (&b"kitten"[..], &b"sitting"[..]);
        assert_eq!(edit_distance_bounded(a, b, 10), Some(3));
        assert_eq!(edit_distance_bounded(a, b, 3), Some(3));
        assert_eq!(edit_distance_bounded(a, b, 2), None);
        assert_eq!(edit_distance_bounded(a, b, 0), None);
        assert_eq!(edit_distance_bounded(a, a, 0), Some(0));
        // Length-gap pre-check: no oracle, straight None.
        assert_eq!(edit_distance_bounded(b"ab", b"abcdefgh", 3), None);
        assert_eq!(edit_distance_bounded(b"", b"xyz", 2), None);
        assert_eq!(edit_distance_bounded(b"", b"xyz", 3), Some(3));
    }

    #[test]
    fn similar_inputs_cost_few_rounds_and_stay_exact() {
        // A 2k-byte pair differing by 3 point edits: d = 3, so the BFS
        // runs 3 rounds over a ~7-cell window instead of 4M DP cells.
        let a: Vec<u8> = (0..2048u32).map(|i| b'a' + (i % 4) as u8).collect();
        let mut b = a.clone();
        b[100] = b'z';
        b.remove(700);
        b.insert(1500, b'q');
        assert_eq!(edit_distance(&a, &b), dp_edit_distance(&a, &b));
        assert_eq!(edit_distance(&a, &b), par_edit_distance(&a, &b));
        assert_eq!(edit_distance_bounded(&a, &b, 3), Some(edit_distance(&a, &b)));
    }
}
