//! slcs-osed — output-sensitive edit distance.
//!
//! Every other algorithm in this workspace pays for the full `n × m`
//! grid even when the inputs are 99% identical — the production-
//! realistic case (genome revisions, log/version diffing). This crate
//! implements the Landau–Vishkin alternative: preprocess the pair so
//! "how far do these two suffixes match?" is O(1), then breadth-first
//! expand the edit-distance frontier one edit at a time, touching
//! O(d²) cells for distance `d` instead of `n · m`.
//!
//! Layered bottom-up:
//!
//! * [`suffix`] — SA-IS suffix-array construction, linear time, no
//!   external dependencies.
//! * [`lcp`] — Kasai LCP array + sparse-table RMQ behind
//!   [`LcpOracle`], with the parlay-style 8-byte direct probe before
//!   the RMQ fallback.
//! * [`bfs`] — the diagonal BFS: [`edit_distance`] (sequential),
//!   [`edit_distance_bounded`] (early exit past a threshold `k`), and
//!   [`par_edit_distance`] (per-round frontier extension on the
//!   vendored rayon pool, bit-equivalent to sequential).
//!
//! The engine's adaptive dispatcher routes high-similarity `EDIT`
//! requests here (see `docs/OSED.md`); everything in this crate is
//! also usable standalone:
//!
//! ```
//! assert_eq!(slcs_osed::edit_distance(b"kitten", b"sitting"), 3);
//! assert_eq!(slcs_osed::edit_distance_bounded(b"kitten", b"sitting", 2), None);
//! ```

pub mod bfs;
pub mod lcp;
pub mod suffix;

pub use bfs::{
    edit_distance, edit_distance_bounded, par_edit_distance, par_edit_distance_grain, PAR_GRAIN,
};
pub use lcp::{LcpOracle, SparseTable};
pub use suffix::suffix_array;
