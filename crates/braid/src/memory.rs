//! The *memory* optimization of the steady ant (§4.2.1): all permutation
//! storage lives in two pre-allocated "ping-pong" blocks of size 2N each,
//! index mappings in a bump arena, and the combine scratch is shared —
//! reducing the number of calls to the memory manager from O(n) to O(1)
//! per multiplication.
//!
//! Layout contract of the recursion (`rec_mem`): a call of order `n`
//! receives
//!
//! * `cur` (length 2n): `P`'s forward map in `cur[..n]`, `Q`'s in
//!   `cur[n..]`; on return the product's forward map is in `cur[..n]`;
//! * `free` (length 2n): writable workspace; the four compressed
//!   sub-permutations are laid out `[P_lo | Q_lo | P_hi | Q_hi]` so that
//!   each sub-call sees a contiguous `cur` block, with the parent's `cur`
//!   halves serving as the children's `free` blocks (the ping-pong of the
//!   paper);
//! * `maps` (bump arena): the node keeps its 2n map entries at the front
//!   and hands the tail to its children. Because the recursion is
//!   depth-first, both children can reuse the same tail — live mappings at
//!   any instant are only those on the current root-to-leaf path, ≤ 4N + ε.

use slcs_perm::Permutation;

use crate::combine::{ant_combine, AntInputs, CombineScratch, NONE};
use crate::precalc::PrecalcTables;

/// Reusable workspace for memory-optimized braid multiplication.
///
/// Construct once with [`BraidMulWorkspace::new`] for the largest order
/// you will multiply, then call [`BraidMulWorkspace::multiply`] any number
/// of times without further heap traffic.
pub struct BraidMulWorkspace {
    ping: Vec<u32>,
    pong: Vec<u32>,
    maps: Vec<u32>,
    expand: Vec<u32>,
    aux: Vec<u32>,
    scratch: CombineScratch,
    capacity: usize,
}

impl BraidMulWorkspace {
    /// Allocates a workspace for multiplications of order up to `n`.
    pub fn new(n: usize) -> Self {
        BraidMulWorkspace {
            ping: vec![0; 2 * n],
            pong: vec![0; 2 * n],
            // live mappings are bounded by 2n + 2⌈n/2⌉ + … ≤ 4n plus a
            // small odd-rounding slack per level
            maps: vec![0; 4 * n + 64],
            expand: vec![0; 4 * n],
            aux: vec![0; 2 * n],
            scratch: CombineScratch::with_capacity(n),
            capacity: n,
        }
    }

    /// Order capacity of this workspace.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Demazure product using pre-allocated memory only. Pass
    /// `Some(PrecalcTables::global())` to also enable the precalc cut-off
    /// (the paper's *combined* configuration).
    ///
    /// # Panics
    ///
    /// Panics if the orders differ or exceed the workspace capacity.
    pub fn multiply(
        &mut self,
        p: &Permutation,
        q: &Permutation,
        tables: Option<&PrecalcTables>,
    ) -> Permutation {
        Permutation::from_forward_unchecked(self.multiply_forward(p.forward(), q.forward(), tables))
    }

    /// As [`Self::multiply`], on raw forward maps.
    pub fn multiply_forward(
        &mut self,
        p: &[u32],
        q: &[u32],
        tables: Option<&PrecalcTables>,
    ) -> Vec<u32> {
        let n = p.len();
        assert_eq!(q.len(), n, "steady ant requires equal orders");
        assert!(n <= self.capacity, "workspace capacity {} < order {n}", self.capacity);
        // Attributes this multiply's allocator traffic (ideally none
        // beyond the final copy-out) to the braid-multiply phase.
        let _mem = slcs_alloc::alloc_scope!("braid.multiply.mem");
        self.ping[..n].copy_from_slice(p);
        self.ping[n..2 * n].copy_from_slice(q);
        rec_mem(
            &mut self.ping[..2 * n],
            &mut self.pong[..2 * n],
            &mut self.maps,
            &mut self.expand,
            &mut self.aux,
            &mut self.scratch,
            tables,
        );
        self.ping[..n].to_vec()
    }
}

/// Convenience wrapper: memory-optimized multiply with a throwaway
/// workspace (the paper's *memory* configuration — one allocation burst
/// up front instead of per-level allocation).
pub fn steady_ant_memory(p: &Permutation, q: &Permutation) -> Permutation {
    let mut ws = BraidMulWorkspace::new(p.len());
    ws.multiply(p, q, None)
}

/// Convenience wrapper: both optimizations (the paper's *combined*
/// configuration).
pub fn steady_ant_combined(p: &Permutation, q: &Permutation) -> Permutation {
    let mut ws = BraidMulWorkspace::new(p.len());
    ws.multiply(p, q, Some(PrecalcTables::global()))
}

fn rec_mem(
    cur: &mut [u32],
    free: &mut [u32],
    maps: &mut [u32],
    expand: &mut [u32],
    aux: &mut [u32],
    scratch: &mut CombineScratch,
    tables: Option<&PrecalcTables>,
) {
    let n = cur.len() / 2;
    if let Some(t) = tables {
        if n <= PrecalcTables::MAX_ORDER {
            let mut out = [0u32; PrecalcTables::MAX_ORDER];
            let (p, q) = cur.split_at(n);
            t.product_into(p, q, &mut out[..n]);
            cur[..n].copy_from_slice(&out[..n]);
            return;
        }
    }
    if n <= 1 {
        return; // the product of order-≤1 permutations is P itself
    }
    let n_lo = n / 2;
    let n_hi = n - n_lo;

    let (node_maps, child_maps) = maps.split_at_mut(2 * n);
    let (row_maps, col_maps) = node_maps.split_at_mut(n);

    // -- Split P by column value into free[..n_lo] (lo) and
    //    free[2*n_lo .. 2*n_lo + n_hi] (hi), recording row maps.
    {
        let (p, _) = cur.split_at(n);
        let mut i_lo = 0usize;
        let mut i_hi = 0usize;
        for (r, &c) in p.iter().enumerate() {
            if (c as usize) < n_lo {
                free[i_lo] = c;
                row_maps[i_lo] = r as u32;
                i_lo += 1;
            } else {
                free[2 * n_lo + i_hi] = c - n_lo as u32;
                row_maps[n_lo + i_hi] = r as u32;
                i_hi += 1;
            }
        }
        debug_assert!(i_lo == n_lo && i_hi == n_hi);
    }

    // -- Split Q by row value, compressing columns via aux ranks.
    {
        let q = &cur[n..2 * n];
        let (q_inv, col_rank) = aux.split_at_mut(n);
        for (r, &c) in q.iter().enumerate() {
            q_inv[c as usize] = r as u32;
        }
        let mut cnt_lo = 0u32;
        let mut cnt_hi = 0u32;
        for (c, &row) in q_inv.iter().enumerate().take(n) {
            if (row as usize) < n_lo {
                col_rank[c] = cnt_lo;
                col_maps[cnt_lo as usize] = c as u32;
                cnt_lo += 1;
            } else {
                col_rank[c] = cnt_hi;
                col_maps[n_lo + cnt_hi as usize] = c as u32;
                cnt_hi += 1;
            }
        }
        for r in 0..n_lo {
            free[n_lo + r] = col_rank[q[r] as usize];
        }
        for r in 0..n_hi {
            free[2 * n_lo + n_hi + r] = col_rank[q[n_lo + r] as usize];
        }
    }

    // -- Conquer, ping-ponging the blocks.
    {
        let (free_lo, free_hi) = free.split_at_mut(2 * n_lo);
        let (cur_lo, cur_hi) = cur.split_at_mut(2 * n_lo);
        rec_mem(free_lo, cur_lo, child_maps, expand, aux, scratch, tables);
        rec_mem(free_hi, cur_hi, child_maps, expand, aux, scratch, tables);
    }

    // -- Expand results (r_lo in free[..n_lo], r_hi in free[2*n_lo..][..n_hi]).
    {
        let (ex_rows, ex_cols) = expand.split_at_mut(2 * n);
        let (lo_col_in_row, hi_col_in_row) = ex_rows.split_at_mut(n);
        let (lo_row_in_col, hi_row_in_col) = ex_cols.split_at_mut(n);
        lo_col_in_row[..n].fill(NONE);
        hi_col_in_row[..n].fill(NONE);
        lo_row_in_col[..n].fill(NONE);
        hi_row_in_col[..n].fill(NONE);
        for k in 0..n_lo {
            let row = row_maps[k];
            let col = col_maps[free[k] as usize];
            lo_col_in_row[row as usize] = col;
            lo_row_in_col[col as usize] = row;
        }
        for k in 0..n_hi {
            let row = row_maps[n_lo + k];
            let col = col_maps[n_lo + free[2 * n_lo + k] as usize];
            hi_col_in_row[row as usize] = col;
            hi_row_in_col[col as usize] = row;
        }
        ant_combine(
            n,
            &AntInputs {
                lo_col_in_row: &lo_col_in_row[..n],
                hi_col_in_row: &hi_col_in_row[..n],
                lo_row_in_col: &lo_row_in_col[..n],
                hi_row_in_col: &hi_row_in_col[..n],
            },
            scratch,
            &mut cur[..n],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slcs_perm::monge::distance_product_reference;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0x3E3)
    }

    #[test]
    fn memory_variant_matches_reference() {
        let mut rng = rng();
        for n in [1usize, 2, 3, 5, 8, 17, 33, 100, 257] {
            let p = Permutation::random(n, &mut rng);
            let q = Permutation::random(n, &mut rng);
            let want = distance_product_reference(&p, &q);
            assert_eq!(steady_ant_memory(&p, &q), want, "memory n={n}");
            assert_eq!(steady_ant_combined(&p, &q), want, "combined n={n}");
        }
    }

    #[test]
    fn workspace_is_reusable_across_orders() {
        let mut rng = rng();
        let mut ws = BraidMulWorkspace::new(128);
        for n in [128usize, 3, 64, 1, 127, 2] {
            let p = Permutation::random(n, &mut rng);
            let q = Permutation::random(n, &mut rng);
            let want = distance_product_reference(&p, &q);
            assert_eq!(ws.multiply(&p, &q, None), want, "reuse n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn workspace_rejects_oversized_input() {
        let mut ws = BraidMulWorkspace::new(4);
        let p = Permutation::identity(5);
        ws.multiply(&p, &p, None);
    }

    #[test]
    fn agrees_with_basic_recursion_on_large_random() {
        let mut rng = rng();
        let p = Permutation::random(2000, &mut rng);
        let q = Permutation::random(2000, &mut rng);
        let basic = crate::seq::steady_ant(&p, &q);
        assert_eq!(steady_ant_combined(&p, &q), basic);
    }
}
