//! Parallel steady-ant braid multiplication (Listing 5 of the paper).
//!
//! Fine-grained parallelism does not apply here — the mapping stage and
//! the ant passage are inherently sequential — but the two recursive
//! sub-products are independent, giving coarse-grained task parallelism.
//! The recursion forks (`rayon::join`) for the top `parallel_depth`
//! levels and then switches to the sequential *combined* implementation
//! (memory pool + precalc), each task with its own workspace.
//!
//! `parallel_depth = 0` therefore reproduces the sequential combined
//! algorithm, and increasing the depth is exactly the threshold sweep of
//! the paper's Figure 4(b) (optimal there: depth 4 on an 8-core machine).

use slcs_perm::Permutation;

use crate::combine::CombineScratch;
use crate::dac::{expand_combine, split};
use crate::memory::BraidMulWorkspace;
use crate::precalc::PrecalcTables;

/// Order below which forking is never worth the task overhead.
const MIN_PARALLEL_ORDER: usize = 4096;

/// Demazure product with coarse-grained task parallelism in the top
/// `parallel_depth` recursion levels.
///
/// Runs on the current rayon thread pool; wrap the call in
/// [`rayon::ThreadPool::install`] to control the thread count (the
/// bench harness does exactly that for the Figure 4(b)/8 sweeps).
///
/// # Panics
///
/// Panics if the orders differ.
pub fn parallel_steady_ant(p: &Permutation, q: &Permutation, parallel_depth: usize) -> Permutation {
    assert_eq!(p.len(), q.len(), "steady ant requires equal orders");
    let tables = PrecalcTables::global();
    let forward = par_rec(p.forward(), q.forward(), parallel_depth, tables);
    Permutation::from_forward_unchecked(forward)
}

fn par_rec(p: &[u32], q: &[u32], depth_left: usize, tables: &PrecalcTables) -> Vec<u32> {
    let n = p.len();
    if depth_left == 0 || n < MIN_PARALLEL_ORDER {
        let mut ws = BraidMulWorkspace::new(n);
        return ws.multiply_forward(p, q, Some(tables));
    }
    let parts = split(p, q);
    let (r_lo, r_hi) = rayon::join(
        || par_rec(&parts.p_lo, &parts.q_lo, depth_left - 1, tables),
        || par_rec(&parts.p_hi, &parts.q_hi, depth_left - 1, tables),
    );
    let mut scratch = CombineScratch::with_capacity(n);
    expand_combine(n, &parts, &r_lo, &r_hi, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xA17)
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = rng();
        for depth in 0..=4usize {
            let p = Permutation::random(10_000, &mut rng);
            let q = Permutation::random(10_000, &mut rng);
            let seq = crate::seq::steady_ant(&p, &q);
            assert_eq!(parallel_steady_ant(&p, &q, depth), seq, "depth={depth}");
        }
    }

    #[test]
    fn parallel_small_inputs_take_sequential_path() {
        let mut rng = rng();
        let p = Permutation::random(10, &mut rng);
        let q = Permutation::random(10, &mut rng);
        assert_eq!(parallel_steady_ant(&p, &q, 6), crate::seq::steady_ant(&p, &q));
    }
}
