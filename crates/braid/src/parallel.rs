//! Parallel steady-ant braid multiplication (Listing 5 of the paper).
//!
//! Fine-grained parallelism does not apply here — the mapping stage and
//! the ant passage are inherently sequential — but the recursive
//! sub-products are independent, giving coarse-grained task parallelism.
//!
//! The driver is *level-synchronous* on one pinned worker team
//! ([`rayon::team_run`]): the top `parallel_depth` recursion levels are
//! flattened into an explicit tree, the leaves are multiplied by the
//! sequential *combined* implementation (memory pool + precalc), and the
//! combine steps run bottom-up — every node of a level in parallel
//! across the team, one barrier between levels. Compared to a
//! fork/join per node, the team is acquired once for the whole product
//! and synchronizes `parallel_depth` times, not `2^parallel_depth`.
//!
//! `parallel_depth = 0` therefore reproduces the sequential combined
//! algorithm, and increasing the depth is exactly the threshold sweep of
//! the paper's Figure 4(b) (optimal there: depth 4 on an 8-core machine).

use std::cell::UnsafeCell;

use slcs_perm::Permutation;

use crate::combine::CombineScratch;
use crate::dac::{expand_combine, split, SplitParts};
use crate::memory::BraidMulWorkspace;
use crate::precalc::PrecalcTables;

/// Order below which forking is never worth the task overhead.
const MIN_PARALLEL_ORDER: usize = 4096;

/// One node of the flattened recursion tree.
struct Node {
    /// This node's operand pair.
    p: Vec<u32>,
    q: Vec<u32>,
    /// Split data, present iff the node has children.
    parts: Option<SplitParts>,
    /// Arena indices of the `lo`/`hi` children (inner nodes only).
    children: Option<(usize, usize)>,
    /// The node's product, written exactly once, one level at a time.
    result: UnsafeCell<Vec<u32>>,
}

/// The tree arena, shared read-mostly across team members. Each member
/// writes only the `result` cells of the nodes assigned to it within a
/// level, and levels are separated by a team barrier, so the aliasing is
/// benign.
struct Arena {
    nodes: Vec<Node>,
    /// Node indices per level, root level first.
    levels: Vec<Vec<usize>>,
}

// SAFETY: each node is evaluated by exactly one team member (round-robin per
// level) and barriers order levels, so a node's `result` cell is never
// aliased mutably; see `eval`.
unsafe impl Sync for Arena {}

impl Arena {
    fn build(p: &[u32], q: &[u32], depth: usize) -> Arena {
        let mut arena = Arena { nodes: Vec::new(), levels: vec![Vec::new(); depth + 1] };
        arena.add_node(p.to_vec(), q.to_vec(), depth, 0);
        arena.levels.retain(|level| !level.is_empty());
        arena
    }

    fn add_node(&mut self, p: Vec<u32>, q: Vec<u32>, depth_left: usize, level: usize) -> usize {
        let idx = self.nodes.len();
        self.nodes.push(Node {
            p,
            q,
            parts: None,
            children: None,
            result: UnsafeCell::new(Vec::new()),
        });
        self.levels[level].push(idx);
        if depth_left > 0 && self.nodes[idx].p.len() >= MIN_PARALLEL_ORDER {
            let parts = split(&self.nodes[idx].p, &self.nodes[idx].q);
            let lo =
                self.add_node(parts.p_lo.clone(), parts.q_lo.clone(), depth_left - 1, level + 1);
            let hi =
                self.add_node(parts.p_hi.clone(), parts.q_hi.clone(), depth_left - 1, level + 1);
            self.nodes[idx].parts = Some(parts);
            self.nodes[idx].children = Some((lo, hi));
        }
        idx
    }

    /// Computes one node's product from its children (or directly, for a
    /// leaf).
    ///
    /// # Safety
    ///
    /// The node must be assigned to exactly one caller within its level,
    /// and its children's results must already be complete (guaranteed
    /// by the bottom-up level order with a barrier between levels).
    unsafe fn eval(&self, idx: usize, tables: &PrecalcTables) {
        let node = &self.nodes[idx];
        let result = match node.children {
            None => {
                let mut ws = BraidMulWorkspace::new(node.p.len());
                ws.multiply_forward(&node.p, &node.q, Some(tables))
            }
            Some((lo, hi)) => {
                // SAFETY: the barrier between levels makes the children's
                // final writes visible, and nothing writes them again.
                let r_lo = unsafe { &*self.nodes[lo].result.get() };
                let r_hi = unsafe { &*self.nodes[hi].result.get() };
                // PANIC: only inner nodes reach this arm, and inner nodes always carry parts.
                let parts = node.parts.as_ref().expect("inner node has parts");
                let n = node.p.len();
                let mut scratch = CombineScratch::with_capacity(n);
                expand_combine(n, parts, r_lo, r_hi, &mut scratch)
            }
        };
        // SAFETY: this node is assigned to exactly one caller in its level
        // (the function's contract), so the write is unaliased.
        unsafe { *node.result.get() = result };
    }
}

/// Demazure product with coarse-grained task parallelism in the top
/// `parallel_depth` recursion levels, scheduled level-synchronously on
/// one worker team.
///
/// Runs on the shared persistent pool; wrap the call in
/// [`rayon::ThreadPool::install`] to control the thread count (the
/// bench harness does exactly that for the Figure 4(b)/8 sweeps).
///
/// # Panics
///
/// Panics if the orders differ.
pub fn parallel_steady_ant(p: &Permutation, q: &Permutation, parallel_depth: usize) -> Permutation {
    assert_eq!(p.len(), q.len(), "steady ant requires equal orders");
    let tables = PrecalcTables::global();
    let threads = rayon::current_num_threads();
    if parallel_depth == 0 || p.len() < MIN_PARALLEL_ORDER || threads <= 1 {
        let mut ws = BraidMulWorkspace::new(p.len());
        let forward = ws.multiply_forward(p.forward(), q.forward(), Some(tables));
        return Permutation::from_forward_unchecked(forward);
    }
    let arena = Arena::build(p.forward(), q.forward(), parallel_depth);
    let leaves = arena.levels.last().map_or(1, Vec::len);
    rayon::team_run(threads.min(leaves), |view| {
        for level in arena.levels.iter().rev() {
            for &idx in level.iter().skip(view.id).step_by(view.size) {
                // SAFETY: round-robin assignment gives each node to one
                // member; children completed before the last barrier.
                unsafe { arena.eval(idx, tables) };
            }
            if !view.barrier() {
                return;
            }
        }
    });
    // SAFETY: team_run has returned, so every member is done; this is the only
    // outstanding reference to the root's result cell.
    let forward = std::mem::take(unsafe { &mut *arena.nodes[0].result.get() });
    Permutation::from_forward_unchecked(forward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xA17)
    }

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = rng();
        for depth in 0..=4usize {
            let p = Permutation::random(10_000, &mut rng);
            let q = Permutation::random(10_000, &mut rng);
            let seq = crate::seq::steady_ant(&p, &q);
            assert_eq!(parallel_steady_ant(&p, &q, depth), seq, "depth={depth}");
        }
    }

    #[test]
    fn parallel_matches_sequential_under_installed_pools() {
        let mut rng = rng();
        let p = Permutation::random(9_000, &mut rng);
        let q = Permutation::random(9_000, &mut rng);
        let seq = crate::seq::steady_ant(&p, &q);
        for threads in [1, 2, 4] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            assert_eq!(pool.install(|| parallel_steady_ant(&p, &q, 3)), seq, "threads={threads}");
        }
    }

    #[test]
    fn parallel_small_inputs_take_sequential_path() {
        let mut rng = rng();
        let p = Permutation::random(10, &mut rng);
        let q = Permutation::random(10, &mut rng);
        assert_eq!(parallel_steady_ant(&p, &q, 6), crate::seq::steady_ant(&p, &q));
    }
}
