//! Sequential steady-ant braid multiplication (Listing 2 of the paper;
//! Tiskin 2015), in its *basic* form: fresh allocations at every recursion
//! level, no precomputation. This is the baseline the paper's Figure 4(a)
//! optimizations are measured against.

use slcs_perm::Permutation;

use crate::combine::CombineScratch;
use crate::dac::{expand_combine, split};
use crate::precalc::PrecalcTables;

/// Demazure (sticky braid / unit-Monge distance) product of two
/// permutations of equal order — basic sequential steady ant,
/// O(n log n) time.
///
/// # Examples
///
/// ```
/// use slcs_perm::Permutation;
/// use slcs_braid::steady_ant;
///
/// let w = Permutation::reversal(6);
/// // crossing every pair twice sticks: w ⊙ w = w
/// assert_eq!(steady_ant(&w, &w), w);
/// let id = Permutation::identity(6);
/// assert_eq!(steady_ant(&w, &id), w);
/// ```
///
/// # Panics
///
/// Panics if the orders differ.
pub fn steady_ant(p: &Permutation, q: &Permutation) -> Permutation {
    assert_eq!(p.len(), q.len(), "steady ant requires equal orders");
    // The naive path allocates at every recursion level; the scope
    // makes that O(n)-allocation profile visible next to the
    // workspace-backed `braid.multiply.mem`.
    let _mem = slcs_alloc::alloc_scope!("braid.multiply_naive.mem");
    let forward = rec(p.forward(), q.forward(), None);
    Permutation::from_forward_unchecked(forward)
}

/// Steady ant with the *precalc* optimization: recursion bottoms out at
/// order ≤ 5 in a table of all `(5!)² = 14 400` pre-computed products
/// (plus the tables for smaller orders), each packed into a 32-bit word —
/// the optimization of §4.2.1 / footnote 6 of the paper.
pub fn steady_ant_precalc(p: &Permutation, q: &Permutation) -> Permutation {
    steady_ant_precalc_capped(p, q, PrecalcTables::MAX_ORDER)
}

/// Steady ant with the precalc cut-off capped at `max_order ≤ 5` — the
/// ablation knob for how many recursion levels the tables remove
/// (`max_order = 1` degenerates to the basic recursion base).
///
/// # Panics
///
/// Panics if `max_order` exceeds [`PrecalcTables::MAX_ORDER`] or the
/// input orders differ.
pub fn steady_ant_precalc_capped(
    p: &Permutation,
    q: &Permutation,
    max_order: usize,
) -> Permutation {
    assert_eq!(p.len(), q.len(), "steady ant requires equal orders");
    assert!(max_order <= PrecalcTables::MAX_ORDER, "tables only cover order ≤ 5");
    let tables = PrecalcTables::global();
    let forward = rec(p.forward(), q.forward(), Some((tables, max_order)));
    Permutation::from_forward_unchecked(forward)
}

/// One level of the divide-and-conquer, allocating its own buffers.
/// Returns the forward map of the product. `tables` carries the precalc
/// tables plus the order at which to cut over to them.
pub(crate) fn rec(p: &[u32], q: &[u32], tables: Option<(&PrecalcTables, usize)>) -> Vec<u32> {
    let n = p.len();
    debug_assert_eq!(q.len(), n);
    if let Some((t, cutoff)) = tables {
        if n <= cutoff {
            return t.product(p, q);
        }
    }
    if n <= 1 {
        return p.to_vec();
    }

    let parts = split(p, q);
    let r_lo = rec(&parts.p_lo, &parts.q_lo, tables);
    let r_hi = rec(&parts.p_hi, &parts.q_hi, tables);
    let mut scratch = CombineScratch::with_capacity(n);
    expand_combine(n, &parts, &r_lo, &r_hi, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slcs_perm::monge::distance_product_reference;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0xB41D)
    }

    #[test]
    fn matches_reference_exhaustively_tiny() {
        // All pairs of permutations of order ≤ 4: 1 + 4 + 36 + 576 pairs.
        for n in 0..=4usize {
            let perms = all_perms(n);
            for p in &perms {
                for q in &perms {
                    let want = distance_product_reference(p, q);
                    assert_eq!(steady_ant(p, q), want, "p={p:?} q={q:?}");
                }
            }
        }
    }

    #[test]
    fn matches_reference_random() {
        let mut rng = rng();
        for n in [5usize, 6, 7, 8, 13, 16, 31, 64, 100, 200] {
            for _ in 0..8 {
                let p = Permutation::random(n, &mut rng);
                let q = Permutation::random(n, &mut rng);
                let want = distance_product_reference(&p, &q);
                assert_eq!(steady_ant(&p, &q), want, "n={n}");
            }
        }
    }

    #[test]
    fn identity_is_unit_at_scale() {
        let mut rng = rng();
        let p = Permutation::random(1000, &mut rng);
        let id = Permutation::identity(1000);
        assert_eq!(steady_ant(&p, &id), p);
        assert_eq!(steady_ant(&id, &p), p);
    }

    #[test]
    fn associativity_random() {
        let mut rng = rng();
        for _ in 0..10 {
            let p = Permutation::random(50, &mut rng);
            let q = Permutation::random(50, &mut rng);
            let r = Permutation::random(50, &mut rng);
            assert_eq!(steady_ant(&steady_ant(&p, &q), &r), steady_ant(&p, &steady_ant(&q, &r)));
        }
    }

    pub(crate) fn all_perms(n: usize) -> Vec<Permutation> {
        let mut out = Vec::new();
        let mut items: Vec<u32> = (0..n as u32).collect();
        heap_permutations(&mut items, n, &mut out);
        out
    }

    fn heap_permutations(items: &mut Vec<u32>, k: usize, out: &mut Vec<Permutation>) {
        if k <= 1 {
            out.push(Permutation::from_forward(items.clone()).unwrap());
            return;
        }
        for i in 0..k {
            heap_permutations(items, k - 1, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
}
