//! The *precalc* optimization (§4.2.1, footnote 6): products of all pairs
//! of permutations of order ≤ 5 are pre-computed once and stored packed in
//! 32-bit machine words, cutting the bottom levels off the steady-ant
//! recursion tree.
//!
//! A permutation of order n ≤ 8 is packed as 8 tetrades (4-bit nibbles):
//! the k-th tetrade holds the column index of the nonzero in row k —
//! exactly the representation described in the paper. The full table set
//! (orders 0..=5) occupies `Σ (n!)²` = 15 017 words ≈ 59 KiB.

use std::sync::OnceLock;

use slcs_perm::monge::distance_product_reference;
use slcs_perm::Permutation;

const FACTORIALS: [usize; 9] = [1, 1, 2, 6, 24, 120, 720, 5040, 40320];

/// Pre-computed product tables for orders `0..=MAX_ORDER`.
pub struct PrecalcTables {
    /// `tables[n][rank(P) * n! + rank(Q)]` = packed product.
    tables: Vec<Vec<u32>>,
}

impl PrecalcTables {
    /// Largest order served from the tables. The paper notes `(6!)²`
    /// products would still be feasible "but probably not any larger
    /// ones"; like the authors we stop at 5.
    pub const MAX_ORDER: usize = 5;

    /// The process-wide tables, built on first use.
    pub fn global() -> &'static PrecalcTables {
        static TABLES: OnceLock<PrecalcTables> = OnceLock::new();
        TABLES.get_or_init(PrecalcTables::build)
    }

    /// Builds all tables from scratch (≈ 15 000 reference products of
    /// order ≤ 5).
    pub fn build() -> Self {
        let mut tables = Vec::with_capacity(Self::MAX_ORDER + 1);
        for (n, &fact) in FACTORIALS.iter().enumerate().take(Self::MAX_ORDER + 1) {
            let perms: Vec<Permutation> =
                (0..fact).map(|r| Permutation::from_forward_unchecked(unrank(r, n))).collect();
            let mut table = vec![0u32; fact * fact];
            for (rp, p) in perms.iter().enumerate() {
                for (rq, q) in perms.iter().enumerate() {
                    let prod = distance_product_reference(p, q);
                    table[rp * fact + rq] = pack(prod.forward());
                }
            }
            tables.push(table);
        }
        PrecalcTables { tables }
    }

    /// Looks up the product of two forward maps of order ≤ [`Self::MAX_ORDER`].
    pub fn product(&self, p: &[u32], q: &[u32]) -> Vec<u32> {
        let n = p.len();
        debug_assert!(n <= Self::MAX_ORDER);
        debug_assert_eq!(q.len(), n);
        let word = self.tables[n][rank(p) * FACTORIALS[n] + rank(q)];
        unpack(word, n)
    }

    /// Looks up the product, writing the result into `out` (no allocation).
    pub fn product_into(&self, p: &[u32], q: &[u32], out: &mut [u32]) {
        let n = p.len();
        debug_assert!(n <= Self::MAX_ORDER);
        debug_assert_eq!(q.len(), n);
        debug_assert_eq!(out.len(), n);
        let mut word = self.tables[n][rank(p) * FACTORIALS[n] + rank(q)];
        for slot in out.iter_mut() {
            *slot = word & 0xF;
            word >>= 4;
        }
    }
}

/// Packs a forward map of order ≤ 8 into nibbles (row k → bits 4k..4k+4).
pub fn pack(forward: &[u32]) -> u32 {
    debug_assert!(forward.len() <= 8);
    forward.iter().enumerate().fold(0u32, |acc, (k, &c)| acc | (c << (4 * k)))
}

/// Unpacks a nibble-packed forward map of order `n`.
pub fn unpack(mut word: u32, n: usize) -> Vec<u32> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(word & 0xF);
        word >>= 4;
    }
    out
}

/// Lehmer rank of a forward map (lexicographic index among all
/// permutations of the same order).
pub fn rank(p: &[u32]) -> usize {
    let n = p.len();
    let mut rank = 0usize;
    for i in 0..n {
        let smaller_later = p[i + 1..].iter().filter(|&&x| x < p[i]).count();
        rank += smaller_later * FACTORIALS[n - 1 - i];
    }
    rank
}

/// Inverse of [`rank`]: the `r`-th permutation of order `n` in
/// lexicographic order.
pub fn unrank(mut r: usize, n: usize) -> Vec<u32> {
    let mut pool: Vec<u32> = (0..n as u32).collect();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let f = FACTORIALS[n - 1 - i];
        let idx = r / f;
        r %= f;
        out.push(pool.remove(idx));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_unrank_roundtrip_all_orders() {
        for (n, &fact) in FACTORIALS.iter().enumerate().take(6) {
            for r in 0..fact {
                let p = unrank(r, n);
                assert_eq!(rank(&p), r, "n={n} r={r}");
            }
        }
    }

    #[test]
    fn rank_is_lexicographic() {
        assert_eq!(unrank(0, 3), vec![0, 1, 2]);
        assert_eq!(unrank(1, 3), vec![0, 2, 1]);
        assert_eq!(unrank(5, 3), vec![2, 1, 0]);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let p = vec![3u32, 0, 2, 1, 4];
        assert_eq!(unpack(pack(&p), 5), p);
        assert_eq!(unpack(pack(&[]), 0), Vec::<u32>::new());
    }

    #[test]
    fn table_lookup_matches_reference() {
        let t = PrecalcTables::build();
        for (n, &fact) in FACTORIALS.iter().enumerate().take(6) {
            // spot-check a diagonal stripe of pairs to keep the test fast
            for r in (0..fact).step_by(7.max(fact / 16)) {
                for s in (0..fact).step_by(11.max(fact / 16)) {
                    let p = Permutation::from_forward_unchecked(unrank(r, n));
                    let q = Permutation::from_forward_unchecked(unrank(s, n));
                    let want = distance_product_reference(&p, &q);
                    assert_eq!(t.product(p.forward(), q.forward()), want.forward());
                    let mut out = vec![0u32; n];
                    t.product_into(p.forward(), q.forward(), &mut out);
                    assert_eq!(out.as_slice(), want.forward());
                }
            }
        }
    }
}
