//! Shared divide-and-conquer building blocks of the steady ant: the
//! split-with-mapping step and the expand-then-combine step, in their
//! allocating form. Used by the basic sequential recursion and by the
//! upper (task-parallel) levels of the parallel recursion; the
//! memory-optimized variant has its own slice-based implementation.

use crate::combine::{ant_combine, AntInputs, CombineScratch, NONE};

/// Result of splitting `(P, Q)` at the middle of the shared dimension:
/// compressed sub-permutations plus the index maps needed to re-expand
/// the recursive results (Listing 2's `split_with_map`).
pub(crate) struct SplitParts {
    pub p_lo: Vec<u32>,
    pub p_hi: Vec<u32>,
    pub q_lo: Vec<u32>,
    pub q_hi: Vec<u32>,
    pub row_map_lo: Vec<u32>,
    pub row_map_hi: Vec<u32>,
    pub col_map_lo: Vec<u32>,
    pub col_map_hi: Vec<u32>,
}

/// Splits `P` by column value and `Q` by row value at `n_lo = n / 2`.
pub(crate) fn split(p: &[u32], q: &[u32]) -> SplitParts {
    let n = p.len();
    debug_assert_eq!(q.len(), n);
    let n_lo = n / 2;

    let mut p_lo = Vec::with_capacity(n_lo);
    let mut p_hi = Vec::with_capacity(n - n_lo);
    let mut row_map_lo = Vec::with_capacity(n_lo);
    let mut row_map_hi = Vec::with_capacity(n - n_lo);
    for (r, &c) in p.iter().enumerate() {
        if (c as usize) < n_lo {
            p_lo.push(c);
            row_map_lo.push(r as u32);
        } else {
            p_hi.push(c - n_lo as u32);
            row_map_hi.push(r as u32);
        }
    }

    let mut col_rank = vec![0u32; n];
    let mut col_map_lo = Vec::with_capacity(n_lo);
    let mut col_map_hi = Vec::with_capacity(n - n_lo);
    {
        let mut q_inv = vec![0u32; n];
        for (r, &c) in q.iter().enumerate() {
            q_inv[c as usize] = r as u32;
        }
        for (c, &row) in q_inv.iter().enumerate() {
            if (row as usize) < n_lo {
                col_rank[c] = col_map_lo.len() as u32;
                col_map_lo.push(c as u32);
            } else {
                col_rank[c] = col_map_hi.len() as u32;
                col_map_hi.push(c as u32);
            }
        }
    }
    let q_lo = q[..n_lo].iter().map(|&c| col_rank[c as usize]).collect();
    let q_hi = q[n_lo..].iter().map(|&c| col_rank[c as usize]).collect();

    SplitParts { p_lo, p_hi, q_lo, q_hi, row_map_lo, row_map_hi, col_map_lo, col_map_hi }
}

/// Re-expands the two recursive results to full coordinates and runs the
/// ant passage, returning the product's forward map.
pub(crate) fn expand_combine(
    n: usize,
    parts: &SplitParts,
    r_lo: &[u32],
    r_hi: &[u32],
    scratch: &mut CombineScratch,
) -> Vec<u32> {
    let mut lo_col_in_row = vec![NONE; n];
    let mut hi_col_in_row = vec![NONE; n];
    let mut lo_row_in_col = vec![NONE; n];
    let mut hi_row_in_col = vec![NONE; n];
    for (k, &c) in r_lo.iter().enumerate() {
        let row = parts.row_map_lo[k];
        let col = parts.col_map_lo[c as usize];
        lo_col_in_row[row as usize] = col;
        lo_row_in_col[col as usize] = row;
    }
    for (k, &c) in r_hi.iter().enumerate() {
        let row = parts.row_map_hi[k];
        let col = parts.col_map_hi[c as usize];
        hi_col_in_row[row as usize] = col;
        hi_row_in_col[col as usize] = row;
    }
    let mut out = vec![NONE; n];
    ant_combine(
        n,
        &AntInputs {
            lo_col_in_row: &lo_col_in_row,
            hi_col_in_row: &hi_col_in_row,
            lo_row_in_col: &lo_row_in_col,
            hi_row_in_col: &hi_row_in_col,
        },
        scratch,
        &mut out,
    );
    out
}
