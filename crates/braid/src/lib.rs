//! Sticky braid multiplication — the algebraic engine of semi-local
//! string comparison.
//!
//! Semi-local LCS kernels are permutation matrices, and gluing two
//! kernels (Theorem 3.4 of the paper) reduces to the **Demazure product**
//! of reduced sticky braids, equivalently the **distance product of
//! unit-Monge matrices** (Tiskin 2015). This crate implements that
//! product:
//!
//! * [`steady_ant`] — the basic O(n log n) divide-and-conquer algorithm
//!   (Listing 2 of the paper);
//! * [`steady_ant_precalc`] — with the *precalc* optimization: all
//!   products of order ≤ 5 pre-computed and packed into 32-bit words;
//! * [`steady_ant_memory`] / [`BraidMulWorkspace`] — with the *memory*
//!   optimization: ping-pong pre-allocated blocks, a bump arena for the
//!   index mappings, O(1) allocations per multiplication;
//! * [`steady_ant_combined`] — both optimizations (the paper's fastest
//!   sequential configuration, ≈1.75× over basic at order 10⁷);
//! * [`parallel_steady_ant`] — coarse-grained task parallelism over the
//!   top recursion levels (Listing 5, Figure 4(b)).
//!
//! All variants are interchangeable and are tested to agree with the
//! O(n³) definitional product in `slcs-perm::monge` and with each other.
//!
//! # Example
//!
//! ```
//! use slcs_perm::Permutation;
//! use slcs_braid::{steady_ant, steady_ant_combined};
//!
//! let p = Permutation::from_forward(vec![2, 0, 1, 3]).unwrap();
//! let q = Permutation::from_forward(vec![1, 3, 0, 2]).unwrap();
//! let r = steady_ant(&p, &q);
//! assert_eq!(r, steady_ant_combined(&p, &q));
//! // the Demazure product is associative but NOT ordinary composition:
//! assert_ne!(r, p.compose(&q));
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod combine;
mod dac;
pub mod memory;
pub mod parallel;
pub mod precalc;
pub mod seq;

pub use memory::{steady_ant_combined, steady_ant_memory, BraidMulWorkspace};
pub use parallel::parallel_steady_ant;
pub use precalc::PrecalcTables;
pub use seq::{steady_ant, steady_ant_precalc, steady_ant_precalc_capped};
