//! The *ant passage*: the O(n) combining step of steady-ant braid
//! multiplication (Listing 2, line 7 of the paper; Tiskin 2015).
//!
//! # Setting
//!
//! After the recursive calls, we hold two n×n **sub**-permutation matrices
//! `R_lo` and `R_hi` with `n_lo + n_hi = n` nonzeros in total, whose rows
//! partition `[0, n)` (they inherit `P`'s rows) and whose columns partition
//! `[0, n)` (they inherit `Q`'s columns). The true product `R = P ⊙ Q`
//! satisfies, on dominance sums (see `slcs-perm` crate docs for the
//! convention `Σ(i,k) = |{r ≥ i, c < k}|`):
//!
//! ```text
//! RΣ(i,k) = min( A(i,k), B(i,k) )
//! A(i,k)  = R_loΣ(i,k) + qhi(k)      qhi(k) = #R_hi cols < k
//! B(i,k)  = R_hiΣ(i,k) + plo(i)      plo(i) = #R_lo rows ≥ i
//! ```
//!
//! (Split the `min_j` in the product definition at `j = n/2`; for `j` in
//! the low half only `P_lo`/`Q_lo` vary and the `Q_hi` mass contributes the
//! constant `qhi(k)`; symmetrically for the high half.)
//!
//! # The two staircases
//!
//! Let `D(i,k) = B(i,k) − A(i,k)`. Elementary case analysis of single
//! steps (each lattice row/column holds exactly one `R_lo` or `R_hi`
//! nonzero) shows `D` is non-decreasing in `−i` (up moves) and
//! non-increasing in `k` (right moves), with unit steps. Hence for every
//! lattice row `i` there are two thresholds:
//!
//! * `k*(i)` — the largest `k` with `D(i,k) ≥ 0`; non-increasing in `i`;
//! * `k°(i)` — the smallest `k` with `D(i,k) ≤ 0`; non-increasing in `i`.
//!
//! Both staircases are traced by a single monotone "ant" walk each, in
//! O(n) total, updating `D` by table lookups.
//!
//! # Recovering the product
//!
//! `R` is read off the 2×2 cross-differences of `RΣ = min(A, B)`:
//!
//! * if all four corners of the window of cell `(r,c)` have `D ≥ 0`
//!   (⇔ `c < k*(r+1)`, by monotonicity), the min is `A` throughout and the
//!   window contributes exactly `R_lo`'s nonzero — `R_lo[(r,c)]` is *good*;
//! * if all four corners have `D ≤ 0` (⇔ `c ≥ k°(r)`), symmetrically
//!   `R_hi[(r,c)]` is *good*;
//! * strictly mixed windows produce the *fresh* nonzeros. They sit at the
//!   inner corners of the sign-change staircase, which is monotone, so the
//!   fresh nonzeros form an inverse-monotone chain: ascending free rows
//!   pair with descending free columns.
//!
//! The good/bad filtering plus the fresh chain is exactly the paper's
//! `filter` + `ant_passage` composition (Listing 2, lines 7–9).

/// Sentinel for "this row/column has no nonzero in this matrix".
pub const NONE: u32 = u32::MAX;

/// Scratch buffers for [`ant_combine`], reusable across calls to avoid
/// per-level allocation (the paper's *memory* optimization keeps exactly
/// one of these alive for the whole recursion).
#[derive(Default, Clone)]
pub struct CombineScratch {
    kstar: Vec<u32>,
    kcirc: Vec<u32>,
    col_taken: Vec<bool>,
}

impl CombineScratch {
    /// Scratch sized for combines of order up to `n`.
    pub fn with_capacity(n: usize) -> Self {
        CombineScratch {
            kstar: Vec::with_capacity(n + 1),
            kcirc: Vec::with_capacity(n + 1),
            col_taken: Vec::with_capacity(n),
        }
    }

    fn reset(&mut self, n: usize) {
        self.kstar.clear();
        self.kstar.resize(n + 1, 0);
        self.kcirc.clear();
        self.kcirc.resize(n + 1, 0);
        self.col_taken.clear();
        self.col_taken.resize(n, false);
    }
}

/// Inputs to the ant passage: the two expanded sub-permutations as
/// row- and column-indexed lookup tables (entries are [`NONE`] where the
/// matrix has no nonzero). Exactly one of `lo_col_in_row[r]`,
/// `hi_col_in_row[r]` must be set for every `r`, and likewise for columns.
pub struct AntInputs<'a> {
    pub lo_col_in_row: &'a [u32],
    pub hi_col_in_row: &'a [u32],
    pub lo_row_in_col: &'a [u32],
    pub hi_row_in_col: &'a [u32],
}

impl AntInputs<'_> {
    /// `ΔD` for a right move across column `k`, at lattice row `i`.
    #[inline(always)]
    fn delta_right(&self, k: usize, i: usize) -> i64 {
        let lo_row = self.lo_row_in_col[k];
        if lo_row != NONE {
            -((lo_row as usize >= i) as i64)
        } else {
            (self.hi_row_in_col[k] as usize >= i) as i64 - 1
        }
    }

    /// `ΔD` for an up move from lattice row `i` to `i − 1`, at column `k`.
    #[inline(always)]
    fn delta_up(&self, i: usize, k: usize) -> i64 {
        let lo_col = self.lo_col_in_row[i - 1];
        if lo_col != NONE {
            1 - (((lo_col as usize) < k) as i64)
        } else {
            ((self.hi_col_in_row[i - 1] as usize) < k) as i64
        }
    }
}

/// Combines `R_lo` and `R_hi` into the product permutation's forward map.
///
/// `out_forward` must have length `n`; on return `out_forward[r]` is the
/// column of the product's nonzero in row `r`. Runs in O(n) time and uses
/// only the provided scratch.
pub fn ant_combine(
    n: usize,
    inputs: &AntInputs<'_>,
    scratch: &mut CombineScratch,
    out_forward: &mut [u32],
) {
    debug_assert_eq!(out_forward.len(), n);
    debug_assert_eq!(inputs.lo_col_in_row.len(), n);
    debug_assert_eq!(inputs.hi_col_in_row.len(), n);
    debug_assert_eq!(inputs.lo_row_in_col.len(), n);
    debug_assert_eq!(inputs.hi_row_in_col.len(), n);
    scratch.reset(n);
    if n == 0 {
        return;
    }

    // Walk 1: k*(i) = max { k : D(i,k) ≥ 0 }, for i = n .. 0.
    {
        let kstar = &mut scratch.kstar;
        let mut k = 0usize;
        let mut d: i64 = 0; // D(n, 0) = 0
        let mut i = n;
        loop {
            while k < n {
                let nd = d + inputs.delta_right(k, i);
                if nd >= 0 {
                    d = nd;
                    k += 1;
                } else {
                    break;
                }
            }
            kstar[i] = k as u32;
            if i == 0 {
                break;
            }
            d += inputs.delta_up(i, k);
            i -= 1;
        }
    }

    // Walk 2: k°(i) = min { k : D(i,k) ≤ 0 }, for i = n .. 0.
    {
        let kcirc = &mut scratch.kcirc;
        let mut k = 0usize;
        let mut d: i64 = 0;
        let mut i = n;
        loop {
            while k < n && d > 0 {
                d += inputs.delta_right(k, i);
                k += 1;
            }
            debug_assert!(d <= 0, "D(i, n) must be non-positive");
            kcirc[i] = k as u32;
            if i == 0 {
                break;
            }
            d += inputs.delta_up(i, k);
            i -= 1;
        }
    }

    // Good nonzeros.
    let kstar = &scratch.kstar;
    let kcirc = &scratch.kcirc;
    let col_taken = &mut scratch.col_taken;
    for r in 0..n {
        let lo = inputs.lo_col_in_row[r];
        let keep = if lo != NONE {
            // all four window corners have D ≥ 0 ⇔ c + 1 ≤ k*(r + 1)
            (lo < kstar[r + 1]).then_some(lo)
        } else {
            // all four corners have D ≤ 0 ⇔ c ≥ k°(r)
            let hi = inputs.hi_col_in_row[r];
            (hi >= kcirc[r]).then_some(hi)
        };
        match keep {
            Some(c) => {
                out_forward[r] = c;
                col_taken[c as usize] = true;
            }
            None => out_forward[r] = NONE,
        }
    }

    // Fresh nonzeros: ascending free rows × descending free columns.
    let mut next_col = n;
    for slot in out_forward.iter_mut() {
        if *slot == NONE {
            loop {
                next_col -= 1;
                if !col_taken[next_col] {
                    break;
                }
            }
            *slot = next_col as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the order-2 worked example from the crate derivation:
    /// reversal ⊙ reversal = reversal, where R_lo = {(1,1)}, R_hi = {(0,0)}
    /// and both product nonzeros are fresh.
    #[test]
    fn both_fresh_order_two() {
        let lo_col_in_row = [NONE, 1];
        let hi_col_in_row = [0, NONE];
        let lo_row_in_col = [NONE, 1];
        let hi_row_in_col = [0, NONE];
        let inputs = AntInputs {
            lo_col_in_row: &lo_col_in_row,
            hi_col_in_row: &hi_col_in_row,
            lo_row_in_col: &lo_row_in_col,
            hi_row_in_col: &hi_row_in_col,
        };
        let mut scratch = CombineScratch::default();
        let mut out = [NONE; 2];
        ant_combine(2, &inputs, &mut scratch, &mut out);
        assert_eq!(out, [1, 0]);
    }

    /// Identity ⊙ identity: R_lo = {(0,0)}, R_hi = {(1,1)} (both good).
    #[test]
    fn both_good_order_two() {
        let lo_col_in_row = [0, NONE];
        let hi_col_in_row = [NONE, 1];
        let lo_row_in_col = [0, NONE];
        let hi_row_in_col = [NONE, 1];
        let inputs = AntInputs {
            lo_col_in_row: &lo_col_in_row,
            hi_col_in_row: &hi_col_in_row,
            lo_row_in_col: &lo_row_in_col,
            hi_row_in_col: &hi_row_in_col,
        };
        let mut scratch = CombineScratch::default();
        let mut out = [NONE; 2];
        ant_combine(2, &inputs, &mut scratch, &mut out);
        assert_eq!(out, [0, 1]);
    }

    #[test]
    fn zero_order_is_noop() {
        let inputs = AntInputs {
            lo_col_in_row: &[],
            hi_col_in_row: &[],
            lo_row_in_col: &[],
            hi_row_in_col: &[],
        };
        let mut scratch = CombineScratch::default();
        ant_combine(0, &inputs, &mut scratch, &mut []);
    }
}
