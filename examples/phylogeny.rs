//! Sequence-family analysis: cluster a set of synthetic virus isolates by
//! LCS distance and recover the (known) family structure — the kind of
//! real-life genome analysis the paper's evaluation is motivated by.
//!
//! ```text
//! cargo run --release --example phylogeny
//! ```

use semilocal_suite::apps::{average_linkage, distance_matrix, Dendrogram};
use semilocal_suite::datagen::{mutate, random_genome, seeded_rng, MutationModel};

fn print_tree(t: &Dendrogram, names: &[String], indent: usize) {
    match t {
        Dendrogram::Leaf(i) => println!("{}- {}", "  ".repeat(indent), names[*i]),
        Dendrogram::Node { left, right, height } => {
            println!("{}+ merge @ distance {height:.3}", "  ".repeat(indent));
            print_tree(left, names, indent + 1);
            print_tree(right, names, indent + 1);
        }
    }
}

fn main() {
    let mut rng = seeded_rng(424242);
    // Three virus "species", each an independent random ancestor; three
    // isolates per species at 3% divergence from their ancestor.
    let mut seqs: Vec<Vec<u8>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    let model = MutationModel::with_divergence(0.03);
    for species in 0..3 {
        let ancestor = random_genome(&mut rng, 4_000);
        for isolate in 0..3 {
            seqs.push(mutate(&mut rng, &ancestor, &model));
            names.push(format!("species{}/isolate{}", species + 1, isolate + 1));
        }
    }

    let t0 = std::time::Instant::now();
    let matrix = distance_matrix(&seqs);
    println!("pairwise LCS distances over {} genomes in {:?}\n", seqs.len(), t0.elapsed());

    println!("distance matrix:");
    print!("{:>22}", "");
    for j in 0..seqs.len() {
        print!(" {:>5}", format!("#{j}"));
    }
    println!();
    for (i, name) in names.iter().enumerate() {
        print!("{name:>22}");
        for j in 0..seqs.len() {
            print!(" {:>5.3}", matrix.get(i, j));
        }
        println!();
    }

    let tree = average_linkage(&matrix);
    println!("\ndendrogram (average linkage):");
    print_tree(&tree, &names, 0);

    // Cut between within-species (~0.06) and between-species (~0.5+).
    let clusters = tree.cut(0.25);
    println!("\nclusters at cut 0.25:");
    for c in &clusters {
        let members: Vec<&str> = c.iter().map(|&i| names[i].as_str()).collect();
        println!("  {{{}}}", members.join(", "));
    }
    assert_eq!(clusters.len(), 3, "three species expected");
    for c in &clusters {
        let species: Vec<usize> = c.iter().map(|&i| i / 3).collect();
        assert!(species.windows(2).all(|w| w[0] == w[1]), "mixed cluster: {clusters:?}");
        assert_eq!(c.len(), 3, "each species has three isolates");
    }
    println!("\nrecovered family structure matches the generative truth.");
}
