//! Approximate matching in virus genomes — the paper's motivating
//! real-life workload.
//!
//! A conserved gene is searched for inside a full (synthetic) virus
//! genome. The naive approach recomputes an LCS for every candidate
//! window — O(m·n) per window, O(m·n²/w) overall. The semi-local kernel
//! is computed once and then answers every window in polylog time.
//!
//! ```text
//! cargo run --release --example genome_scan [genome.fasta]
//! ```
//!
//! With a FASTA path, the first two records are compared instead of
//! synthetic data (drop in real NCBI virus sequences here).

use std::time::Instant;

use semilocal_suite::datagen::{self, genome::to_ascii, mutate, MutationModel};
use semilocal_suite::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (gene, genome) = if let Some(path) = args.get(1) {
        let records = datagen::read_fasta_file(path).expect("cannot read FASTA");
        assert!(records.len() >= 2, "need at least two FASTA records");
        println!("loaded {} and {}", records[0].header, records[1].header);
        (
            datagen::genome::from_ascii(&records[0].sequence),
            datagen::genome::from_ascii(&records[1].sequence),
        )
    } else {
        // Synthetic substitute for the NCBI dataset: a 30 kbp coronavirus-
        // sized genome; the "gene" is a 600 bp fragment of a related
        // isolate (2% divergence), so it is close but not identical.
        let mut rng = seeded_rng(2021);
        let genome = datagen::random_genome(&mut rng, 30_000);
        let fragment_at = 17_500;
        let fragment = &genome[fragment_at..fragment_at + 600];
        let gene = mutate(&mut rng, fragment, &MutationModel::with_divergence(0.02));
        println!(
            "synthetic genome: 30000 bp; gene: {} bp mutated from position {fragment_at}",
            gene.len()
        );
        (gene, genome)
    };

    let (m, n) = (gene.len(), genome.len());
    let w = m; // window length = gene length

    // --- semi-local: one comb, then every window by dominance queries.
    let t0 = Instant::now();
    let kernel = antidiag_combing_branchless(&gene, &genome);
    let t_comb = t0.elapsed();
    let t1 = Instant::now();
    let scores = kernel.index();
    let windows = scores.windows(w);
    let t_query = t1.elapsed();

    let (best_at, best) = windows.iter().copied().enumerate().max_by_key(|&(_, s)| s).unwrap();
    println!("\nsemi-local scan: comb {t_comb:?} + {} window queries {t_query:?}", windows.len());
    println!(
        "best window: genome[{best_at}..{}] with LCS {best}/{m} ({:.1}% identity)",
        best_at + w,
        100.0 * best as f64 / m as f64
    );

    // --- naive rescan of a sample of windows for comparison (full naive
    // would be n − w + 1 separate DP runs; we time 50 and extrapolate).
    let sample = 50.min(n - w + 1);
    let t2 = Instant::now();
    let mut naive_best = 0;
    for i in 0..sample {
        naive_best = naive_best.max(prefix_rowmajor(&gene, &genome[i..i + w]));
    }
    let t_naive_sample = t2.elapsed();
    let est_full = t_naive_sample * ((n - w + 1) as f64 / sample as f64) as u32;
    println!(
        "\nnaive per-window DP: {sample} windows in {t_naive_sample:?} → est. {est_full:?} for all {}",
        n - w + 1
    );

    // cross-check on the best window
    let check = prefix_rowmajor(&gene, &genome[best_at..best_at + w]);
    assert_eq!(check, best, "kernel window score must equal direct DP");
    println!("\ncross-check vs direct DP at the best window: OK");

    // show a stretch of the alignment
    let lcs = hirschberg_lcs(&gene, &genome[best_at..best_at + w]);
    let shown = to_ascii(&lcs[..60.min(lcs.len())]);
    println!("first 60 aligned bases: {}", String::from_utf8_lossy(&shown));
}
