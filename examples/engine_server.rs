//! The comparison engine as a network service: starts an [`Engine`]
//! behind the TCP line protocol, drives it with a handful of in-process
//! clients (including one that provokes backpressure), and prints the
//! stats snapshot the engine accumulated.
//!
//! ```text
//! cargo run --release --example engine_server
//! ```
//!
//! For a long-running server on a fixed port use the CLI instead:
//! `slcs serve --addr 127.0.0.1:7171`, then talk to it with netcat:
//!
//! ```text
//! $ printf 'LCS abcabba cbabac\nSTATS\nQUIT\n' | nc 127.0.0.1 7171
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use semilocal_suite::engine::{serve, Engine, EngineConfig, ServerConfig};

fn client(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::new();
    for line in lines {
        writeln!(writer, "{line}").expect("send");
        let mut response = String::new();
        reader.read_line(&mut response).expect("receive");
        responses.push(format!("{line:<32} -> {}", response.trim_end()));
    }
    responses
}

fn main() {
    // A deliberately small engine so the example shows queueing and
    // caching behaviour, not just raw speed.
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        queue_capacity: 8,
        cache_capacity: 16,
        batch_limit: 4,
        threads_per_request: 1,
        ..EngineConfig::default()
    }));
    let handle = serve("127.0.0.1:0", engine.clone(), ServerConfig::default()).expect("bind");
    let addr = handle.addr();
    println!("engine listening on {addr}\n");

    // Three concurrent clients issuing mixed workloads; the repeated
    // pair means later requests are kernel-cache hits.
    let sessions: Vec<Vec<&str>> = vec![
        vec!["PING", "LCS abcabba cbabac", "WINDOWS 4 abcabba cbabac", "QUIT"],
        vec!["LCS abcabba cbabac", "EDIT kitten sitting", "EDIT kitten sitting 6", "QUIT"],
        vec!["WINDOWS 4 abcabba cbabac", "EDIT gattaca gatacca", "STATS", "QUIT"],
    ];
    let outputs: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            sessions.iter().map(|lines| scope.spawn(move || client(addr, lines))).collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });
    for (i, session) in outputs.iter().enumerate() {
        println!("client {i}:");
        for line in session {
            println!("  {line}");
        }
    }

    handle.stop();
    println!("\nfinal engine stats:\n{}", engine.stats());
}
