//! A tour of every algorithm in the suite on one workload, with timings —
//! a miniature of the paper's evaluation section.
//!
//! ```text
//! cargo run --release --example algorithm_tour [length]
//! ```

use std::time::Instant;

use semilocal_suite::baselines::{cipr_lcs, hyyro_lcs, par_prefix_antidiag};
use semilocal_suite::bitpar::{bit_lcs_new1, bit_lcs_old};
use semilocal_suite::datagen::binary_string;
use semilocal_suite::prelude::*;
use semilocal_suite::semilocal::{
    antidiag_combing, antidiag_combing_simd, antidiag_combing_u16, load_balanced_combing,
    simd_support, SemiLocalKernel,
};

fn time<R>(label: &str, f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let t = Instant::now();
    let r = f();
    let d = t.elapsed();
    println!("  {label:<28} {d:>12.3?}");
    (r, d)
}

fn main() {
    let len: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let mut rng = seeded_rng(99);
    let sigma_strings: Vec<Vec<i64>> = (0..2).map(|_| normal_string(&mut rng, len, 1.0)).collect();
    let (a, b) = (&sigma_strings[0], &sigma_strings[1]);

    println!("== semi-local combing algorithms (σ=1 strings, n = {len}) ==");
    let (reference, _) = time("iterative (rowmajor)", || iterative_combing(a, b));
    let checks: Vec<(&str, SemiLocalKernel)> = vec![
        ("antidiag (branching)", time("antidiag (branching)", || antidiag_combing(a, b)).0),
        (
            "antidiag (branchless)",
            time("antidiag (branchless)", || antidiag_combing_branchless(a, b)).0,
        ),
        ("antidiag (u16)", time("antidiag (u16)", || antidiag_combing_u16(a, b)).0),
        ("load-balanced", time("load-balanced", || load_balanced_combing(a, b)).0),
        ("recursive", time("recursive", || recursive_combing(a, b)).0),
        (
            "hybrid (threshold 2048)",
            time("hybrid (threshold 2048)", || hybrid_combing(a, b, 2048)).0,
        ),
        ("grid hybrid (4 tasks)", time("grid hybrid (4 tasks)", || grid_hybrid_combing(a, b, 4)).0),
    ];
    for (name, k) in &checks {
        assert_eq!(k, &reference, "{name} kernel mismatch");
    }
    // the explicit-SIMD path takes u32 characters
    let a32: Vec<u32> = a.iter().map(|&v| (v + (1 << 20)) as u32).collect();
    let b32: Vec<u32> = b.iter().map(|&v| (v + (1 << 20)) as u32).collect();
    let (k, _) = time(&format!("antidiag (explicit {})", simd_support()), || {
        antidiag_combing_simd(&a32, &b32)
    });
    assert_eq!(k.lcs(), reference.lcs());
    println!("  all kernels bit-identical ✓   LCS = {}", reference.lcs());

    println!("\n== prefix (classical) LCS baselines ==");
    let (want, _) = time("prefix rowmajor", || prefix_rowmajor(a, b));
    let (got, _) = time("prefix antidiag", || prefix_antidiag(a, b));
    assert_eq!(want, got);
    let (got, _) = time("prefix antidiag (parallel)", || par_prefix_antidiag(a, b));
    assert_eq!(want, got);
    assert_eq!(want, reference.lcs());

    println!("\n== bit-parallel algorithms (binary strings, n = {}) ==", 4 * len);
    let ba = binary_string(&mut rng, 4 * len);
    let bb = binary_string(&mut rng, 4 * len);
    let (want, _) = time("prefix rowmajor", || prefix_rowmajor(&ba, &bb));
    for (name, f) in [
        ("bit_old", bit_lcs_old as fn(&[u8], &[u8]) -> usize),
        ("bit_new_1", bit_lcs_new1),
        ("bit_new_2", bit_lcs_new2),
        ("CIPR (adder-based)", cipr_lcs),
        ("Hyyro (adder-based)", hyyro_lcs),
    ] {
        let (got, _) = time(name, || f(&ba, &bb));
        assert_eq!(got, want, "{name}");
    }

    println!("\n== braid multiplication ==");
    let p = Permutation::random(1 << 20, &mut rng);
    let q = Permutation::random(1 << 20, &mut rng);
    let (r1, _) = time("steady ant (basic)", || steady_ant(&p, &q));
    let (r2, _) = time("steady ant (combined)", || steady_ant_combined(&p, &q));
    let (r3, _) = time("steady ant (parallel d=4)", || parallel_steady_ant(&p, &q, 4));
    assert!(r1 == r2 && r2 == r3);
    println!("  all products identical ✓");
}
