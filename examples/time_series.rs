//! Time-series pattern analysis with semi-local string comparison — the
//! application sketched in the paper's conclusion ("our techniques could
//! be used for analysis of patterns in real-life data, for example, in
//! time series data").
//!
//! A long noisy signal contains two instances of the same motif (with
//! different noise, amplitude, and baseline phase). The signal is
//! discretized SAX-style; the query is the symbolized first instance;
//! one semi-local comb then scores the query against **every** window of
//! the series, and the second instance surfaces as the best non-trivial
//! peak.
//!
//! ```text
//! cargo run --release --example time_series
//! ```

use semilocal_suite::prelude::*;

/// Symbolize a signal into `levels` bands by value (simple SAX).
fn symbolize(signal: &[f64], levels: u8) -> Vec<u8> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &x in signal {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    let span = (hi - lo).max(f64::EPSILON);
    signal
        .iter()
        .map(|&x| (((x - lo) / span) * levels as f64).min(levels as f64 - 1.0) as u8)
        .collect()
}

/// Top local maxima of `scores`, at least `sep` apart, best first.
fn peaks(scores: &[usize], sep: usize, count: usize) -> Vec<(usize, usize)> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(scores[i]));
    let mut picked: Vec<(usize, usize)> = Vec::new();
    for i in order {
        if picked.iter().all(|&(p, _)| p.abs_diff(i) >= sep) {
            picked.push((i, scores[i]));
            if picked.len() == count {
                break;
            }
        }
    }
    picked
}

fn main() {
    // Baseline sine + drift + noise, with the same motif buried at two
    // offsets (the second at 0.8 amplitude).
    let motif: Vec<f64> = (0..120)
        .map(|i| ((i as f64) / 8.0).sin() * (1.0 - (i as f64 - 60.0).abs() / 60.0) * 3.0)
        .collect();
    let mut rng = seeded_rng(7);
    let mut series: Vec<f64> =
        (0..6000).map(|i| (i as f64 / 45.0).sin() * 0.6 + i as f64 * 1e-4).collect();
    for (offset, scale) in [(1500usize, 1.0f64), (4200, 0.8)] {
        for (k, &m) in motif.iter().enumerate() {
            series[offset + k] += m * scale;
        }
    }
    for x in series.iter_mut() {
        use rand::RngExt;
        *x += rng.random_range(-0.25..0.25);
    }

    let levels = 6u8;
    let sym = symbolize(&series, levels);
    let w = motif.len();
    let query = &sym[1500..1500 + w]; // symbolized first instance

    // Semi-local comb of query vs series: every window scored at once.
    let kernel = antidiag_combing_branchless(query, &sym);
    let scores = kernel.index();
    let windows = scores.windows(w);

    println!("query length {w}, series length {}, alphabet {levels}", series.len());
    println!("top similarity peaks (≥ {w} apart):");
    let top = peaks(&windows, w, 5);
    for &(at, score) in &top {
        println!(
            "  t = {at:5}  LCS = {score:3}/{w}  ({:.0}% similarity)",
            100.0 * score as f64 / w as f64
        );
    }

    assert_eq!(top[0].0.abs_diff(1500), 0, "the query matches itself exactly");
    assert!(top[1].0.abs_diff(4200) < w / 2, "second motif instance not found near 4200: {top:?}");
    println!(
        "\nself-match at t = {} and the independent noisy instance at t = {} recovered.",
        top[0].0, top[1].0
    );
}
