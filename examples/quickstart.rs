//! Quickstart: one semi-local comb answers every substring question.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use semilocal_suite::prelude::*;

fn main() {
    let pattern = b"GCACGT";
    let text = b"ACGTTGCAACGTACGCACTT";

    // 1. Classical LCS: one number for one pair of strings.
    println!("pattern = {}", String::from_utf8_lossy(pattern));
    println!("text    = {}", String::from_utf8_lossy(text));
    println!("global LCS (Wagner-Fischer) = {}", prefix_rowmajor(pattern, text));

    // 2. Semi-local LCS: the same O(mn) work yields the kernel, from
    //    which the LCS of the pattern against EVERY window of the text
    //    (and every prefix/suffix combination) is a single query.
    let kernel = iterative_combing(pattern, text);
    let scores = kernel.index();
    assert_eq!(scores.lcs(), prefix_rowmajor(pattern, text));

    println!("\npattern vs every window of length {}:", pattern.len());
    let w = pattern.len();
    let windows = scores.windows(w);
    for (i, score) in windows.iter().enumerate() {
        println!(
            "  text[{i:2}..{:2}] = {}   LCS = {score}",
            i + w,
            String::from_utf8_lossy(&text[i..i + w]),
        );
    }
    let best = windows.iter().enumerate().max_by_key(|&(_, s)| s).unwrap();
    println!("best window starts at {} with score {}", best.0, best.1);

    // 3. The other quadrants come for free.
    println!("\nprefix/suffix examples:");
    println!("  LCS(pattern[..4], text[12..])  = {}", scores.prefix_suffix(4, 12));
    println!("  LCS(pattern[2..], text[..8])   = {}", scores.suffix_prefix(2, 8));
    println!("  LCS(pattern[1..5], whole text) = {}", scores.substring_string(1, 5));

    // 4. Show an actual optimal subsequence for the best window.
    let lcs = hirschberg_lcs(pattern, &text[best.0..best.0 + w]);
    println!(
        "\none optimal common subsequence with the best window: {}",
        String::from_utf8_lossy(&lcs)
    );
}
