//! Renders the reduced sticky braid of a comparison (paper Figure 1).
//!
//! ```text
//! cargo run --example braid_art [a] [b]
//! ```

use semilocal_suite::prelude::*;
use semilocal_suite::render_braid;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let a = args.get(1).map(|s| s.as_bytes().to_vec()).unwrap_or_else(|| b"baabcbca".to_vec());
    let b = args.get(2).map(|s| s.as_bytes().to_vec()).unwrap_or_else(|| b"baabcabcabaca".to_vec());

    println!("a = {}", String::from_utf8_lossy(&a));
    println!("b = {}\n", String::from_utf8_lossy(&b));

    // column header
    print!("   ");
    for c in &b {
        print!(" {} ", *c as char);
    }
    println!();
    let art = render_braid(&a, &b);
    for (row, line) in art.lines().enumerate() {
        let label = if row % 2 == 0 { a[row / 2] as char } else { ' ' };
        println!(" {label} {line}");
    }

    let kernel = iterative_combing(&a, &b);
    let scores = kernel.index();
    println!("\nkernel permutation (strand start → end):");
    println!("{:?}", kernel.permutation().forward());
    println!("\nLCS(a, b) = {}", scores.lcs());
    println!("turn cells (─╮/╰─) are matches or repeated meetings; ─┼─ are crossings.");
    println!("Every pair of strands crosses at most once: the braid is reduced.");
}
