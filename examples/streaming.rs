//! Streaming comparison: maintain semi-local scores while one string
//! grows, using incremental kernel composition (Theorem 3.4) instead of
//! recombing from scratch after every append.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use std::time::Instant;

use semilocal_suite::datagen::{genome_pair, seeded_rng};
use semilocal_suite::semilocal::incremental::IncrementalKernel;
use semilocal_suite::semilocal::iterative_combing;

fn main() {
    let mut rng = seeded_rng(31337);
    // A reference gene, and a "sequencer" emitting a related genome in
    // chunks of 512 bases.
    let (gene, stream) = genome_pair(&mut rng, 8_000, 0.04);
    let gene = &gene[..2_000];

    let mut inc = IncrementalKernel::new(gene.to_vec(), Vec::new());
    let mut t_inc_total = std::time::Duration::ZERO;
    let mut t_full_total = std::time::Duration::ZERO;

    println!("pattern {} bp; streaming {} bp in 512-base chunks\n", gene.len(), stream.len());
    println!("{:>8} {:>14} {:>14} {:>8}", "received", "incremental", "full recomb", "LCS");
    for (k, chunk) in stream.chunks(512).enumerate() {
        let t = Instant::now();
        inc.append_b(chunk);
        t_inc_total += t.elapsed();

        // reference: recomb everything received so far
        let prefix_len = ((k + 1) * 512).min(stream.len());
        let t = Instant::now();
        let full = iterative_combing(gene, &stream[..prefix_len]);
        t_full_total += t.elapsed();

        assert_eq!(inc.kernel(), &full, "incremental kernel must equal recomb");
        if k % 4 == 3 {
            println!(
                "{:>8} {:>14?} {:>14?} {:>8}",
                prefix_len,
                t_inc_total,
                t_full_total,
                full.lcs()
            );
        }
    }
    println!(
        "\ncumulative: incremental {:?} vs full-recomb {:?} ({:.1}x saved)",
        t_inc_total,
        t_full_total,
        t_full_total.as_secs_f64() / t_inc_total.as_secs_f64()
    );
}
